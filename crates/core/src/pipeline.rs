//! The end-to-end QKBfly system and its evaluation variants.
//!
//! * **QKBfly** (joint): stage 1 → greedy densification → canonicalization;
//! * **QKBfly-pipeline**: three separate stages — extraction, per-mention
//!   NED (type signatures omitted), recency-based CR (§7.1);
//! * **QKBfly-noun**: no co-reference resolution at all (§7.1);
//! * **QKBfly-ilp**: exact joint inference via the Appendix-A ILP (§7.2).
//!
//! `build_kb` is the paper's query-time entry point: documents in, a
//! canonicalized on-the-fly KB out, with per-stage wall-clock timings
//! (§7.1 reports <1 s/document with about half the time in
//! pre-processing).

use crate::build::{build_graph, BuildConfig, BuiltGraph, GraphArg, GraphClause};
use crate::canonicalize::{
    apply_decisions, canonicalize_into, decide_cluster, plan_clusters, CanonConfig,
    ClusterDecision, ClusterPlan, DocCanonOutput,
};
use crate::decompose::{densify_decomposed, resolve_ilp_decomposed};
use crate::densify::DensifyOutcome;
use crate::densify::{
    densify, resolve_independent, resolve_pronouns_by_recency, MentionResolution,
};
use crate::graph::{EdgeKind, NodeId, NodeKind, SemanticGraph};
use crate::ilp::{resolve_ilp, IlpSolveOptions};
use crate::resolve_cache::ResolveCacheProvider;
use crate::weights::WeightModel;
use qkb_kb::{BackgroundStats, EntityId, EntityRepository, Fact, OnTheFlyKb, PatternRepository};
use qkb_nlp::Pipeline as NlpPipeline;
use qkb_obs::Recorder;
use qkb_openie::{ClausIe, Clause, Extraction};
use qkb_util::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Architecture variant (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Joint fact extraction + NED + CR (the QKBfly row).
    Joint,
    /// Separate stages, type signatures omitted (QKBfly-pipeline).
    PipelineArch,
    /// Fact extraction + NED only, no CR (QKBfly-noun).
    NounOnly,
}

/// Inference backend for the joint variant (Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Greedy densest-subgraph approximation (Algorithm 1).
    Greedy,
    /// Exact 0-1 ILP (Appendix A).
    Ilp,
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct QkbflyConfig {
    /// Architecture variant.
    pub variant: Variant,
    /// Joint-inference backend.
    pub solver: SolverKind,
    /// Edge-weight hyper-parameters α₁..α₄.
    pub alphas: [f64; 4],
    /// Fact confidence threshold τ.
    pub tau: f64,
    /// Link-confidence floor below which clusters become emerging.
    pub low_link: f64,
    /// Backward pronoun window (sentences).
    pub pronoun_window: usize,
    /// Emit higher-arity facts.
    pub emit_nary: bool,
    /// Worker threads for the per-document phase of [`Qkbfly::build_kb`]:
    /// `0` uses all available cores, `1` is the fully serial path. The
    /// canonicalized KB is byte-identical for every setting (per-document
    /// outputs are merged in document order).
    pub parallelism: usize,
    /// Ownership shards for the **merge phase** (canonicalization):
    /// `1` (the default) is the serial document-order fold; `n > 1`
    /// computes per-cluster canonicalization decisions on `n` worker
    /// threads — clusters are sharded by entity-cluster ownership (hash
    /// of the resolved canonical repository id, or of the novel
    /// cluster's mention texts) — and then applies them in a
    /// deterministic document-order reduce; `0` uses all available
    /// cores. The canonicalized KB is **byte-identical** to the serial
    /// fold at any shard count (property-tested at 1/2/8 and gated in
    /// CI), because deciding a cluster is a pure function of the
    /// stage-1 artifact and only the serial reduce allocates KB ids.
    pub merge_parallelism: usize,
    /// Worker threads for the **resolve stage** of a single document:
    /// the coupling graph is decomposed into independent components
    /// (see [`crate::decompose`]) and component solves fan out over
    /// this many threads, recombining in deterministic component-index
    /// order. `0` uses all available cores, `1` solves components
    /// serially (still decomposed). The resolved output — and hence the
    /// KB — is **byte-identical** at any setting (property-tested at
    /// 1/2/8 and gated in CI).
    pub resolve_parallelism: usize,
    /// Decompose the per-document resolve problem into coupling
    /// components (on by default). `false` restores the monolithic
    /// whole-document solve — the cold baseline arm of
    /// `bench_resolve` — and disables candidate pruning and the greedy
    /// warm start along with it.
    pub resolve_decomposition: bool,
    /// Branch-and-bound node budget per ILP component solve (`0` = the
    /// solver's generous default). On exhaustion the solver falls back
    /// to the greedy warm-start incumbent, so a tight budget degrades
    /// toward `resolve_independent`, never below it.
    pub ilp_node_budget: u64,
}

impl Default for QkbflyConfig {
    fn default() -> Self {
        Self {
            variant: Variant::Joint,
            solver: SolverKind::Greedy,
            alphas: WeightModel::default().alphas,
            tau: 0.5,
            low_link: 0.2,
            pronoun_window: 5,
            emit_nary: true,
            parallelism: 0,
            merge_parallelism: 1,
            resolve_parallelism: 1,
            resolve_decomposition: true,
            ilp_node_budget: 0,
        }
    }
}

/// Wall-clock breakdown per stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Tokenization, tagging, NER, time tagging, chunking, parsing,
    /// clause detection.
    pub preprocess: Duration,
    /// Semantic-graph construction.
    pub graph: Duration,
    /// NED+CR inference.
    pub resolve: Duration,
    /// Canonicalization.
    pub canonicalize: Duration,
}

impl StageTimings {
    /// Total time.
    pub fn total(&self) -> Duration {
        self.preprocess + self.graph + self.resolve + self.canonicalize
    }

    fn add(&mut self, other: &StageTimings) {
        self.preprocess += other.preprocess;
        self.graph += other.graph;
        self.resolve += other.resolve;
        self.canonicalize += other.canonicalize;
    }

    /// Per-stage wall-clock in microseconds, for serving metrics and
    /// benchmark reports.
    pub fn to_json(&self) -> qkb_util::json::Value {
        qkb_util::json::Value::object()
            .with("preprocess_us", self.preprocess.as_micros() as f64)
            .with("graph_us", self.graph.as_micros() as f64)
            .with("resolve_us", self.resolve.as_micros() as f64)
            .with("canonicalize_us", self.canonicalize.as_micros() as f64)
            .with("total_us", self.total().as_micros() as f64)
    }
}

/// One surface extraction with provenance and the τ decision.
#[derive(Clone, Debug)]
pub struct ExtractionRecord {
    /// Document index within the input set.
    pub doc: usize,
    /// The surface extraction (canonicalized subject/relation/args).
    pub extraction: Extraction,
    /// Whether the τ filter kept the corresponding fact.
    pub kept: bool,
    /// Resolved repository entity per slot (subject first, then args;
    /// `None` for emerging entities and literals).
    pub slot_entities: Vec<Option<EntityId>>,
}

/// One chosen entity link (for NED assessment).
#[derive(Clone, Debug)]
pub struct LinkRecord {
    /// Document index.
    pub doc: usize,
    /// Sentence index.
    pub sentence: usize,
    /// Mention surface.
    pub phrase: String,
    /// Linked repository entity.
    pub entity: EntityId,
    /// Link confidence.
    pub confidence: f64,
}

/// Resolve-stage work counters (per document, summable across a build).
///
/// These turn the one-off "ILP variable count" diagnostic into a benched
/// series: `bench_resolve` reports them per arm, and the serving layer
/// accumulates them into its stats snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveCounters {
    /// Coupling components the resolve problem decomposed into
    /// (1 for a monolithic solve).
    pub components: u64,
    /// ILP variables built (0 for the greedy backend).
    pub ilp_variables: u64,
    /// Branch-and-bound nodes explored (0 for the greedy backend).
    pub bnb_nodes: u64,
    /// Candidate entities eliminated by the admissible pruning bound
    /// before the solver.
    pub pruned_candidates: u64,
    /// Components replayed from the resolve cache (exact re-check
    /// passed; the solver never ran).
    pub cache_hits: u64,
    /// Components solved fresh with a resolve cache attached (first
    /// sight, uncacheable, or re-check rejection).
    pub cache_misses: u64,
    /// Components resolved with no resolve cache attached.
    pub cache_bypass: u64,
}

impl ResolveCounters {
    /// Accumulates another document's counters into this one.
    pub fn add(&mut self, other: &ResolveCounters) {
        self.components += other.components;
        self.ilp_variables += other.ilp_variables;
        self.bnb_nodes += other.bnb_nodes;
        self.pruned_candidates += other.pruned_candidates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_bypass += other.cache_bypass;
    }

    /// JSON rendering for benchmark reports and serving stats.
    pub fn to_json(&self) -> qkb_util::json::Value {
        qkb_util::json::Value::object()
            .with("components", self.components)
            .with("ilp_variables", self.ilp_variables)
            .with("bnb_nodes", self.bnb_nodes)
            .with("pruned_candidates", self.pruned_candidates)
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("cache_bypass", self.cache_bypass)
    }
}

/// Per-document diagnostics.
#[derive(Clone, Debug, Default)]
pub struct DocResult {
    /// Stage timings for this document.
    pub timings: StageTimings,
    /// Graph size (nodes, edges).
    pub graph_size: (usize, usize),
    /// Resolve-stage work counters (components, ILP variables,
    /// branch-and-bound nodes, pruned candidates).
    pub resolve: ResolveCounters,
}

/// The result of building an on-the-fly KB.
pub struct BuildResult<'a> {
    /// The canonicalized KB.
    pub kb: OnTheFlyKb,
    /// All extraction records (assessment view).
    pub records: Vec<ExtractionRecord>,
    /// All link records (assessment view).
    pub links: Vec<LinkRecord>,
    /// Summed stage timings.
    pub timings: StageTimings,
    /// Per-document diagnostics.
    pub per_doc: Vec<DocResult>,
    patterns: &'a PatternRepository,
}

impl BuildResult<'_> {
    /// Paper-style rendering of a fact from this KB.
    pub fn render(&self, fact: &Fact) -> String {
        self.kb.render_fact(fact, self.patterns)
    }
}

/// What one [`Qkbfly::extend_kb`] call did to the target KB.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtendOutcome {
    /// Artifacts merged (their documents were new to the KB).
    pub merged: usize,
    /// Artifacts skipped because their document was already resident —
    /// the streaming dedup count.
    pub skipped: usize,
    /// Summed stage timings of the merged documents: canonicalize is
    /// this call's wall clock, the earlier slots carry the artifacts'
    /// original compute cost (their provenance).
    pub timings: StageTimings,
}

/// The output of the pure per-document phase (preprocessing, semantic
/// graph, joint NED+CR) — everything that can run concurrently across
/// the documents of a batch. Feed it to [`Qkbfly::merge_doc`] in document
/// order to obtain the canonicalized KB.
///
/// The artifact is fully owned (no borrowed lifetimes) and depends only
/// on the document text and the system configuration — not on the
/// document's position in a batch — so it can sit behind an
/// `Arc<DocStage1>` in a per-document cache and be re-merged into any
/// number of fragments ([`Qkbfly::assemble_from`]).
pub struct DocStage1 {
    /// Fingerprint of the source document text
    /// (`qkb_util::fingerprint64`) — the artifact's identity for
    /// per-document caches and the streaming dedup probe of
    /// [`Qkbfly::extend_kb`].
    pub fingerprint: u64,
    /// The densified per-document semantic graph.
    pub built: BuiltGraph,
    /// Resolutions chosen by the inference backend.
    pub outcome: DensifyOutcome,
    /// Diagnostics accumulated so far (preprocess/graph/resolve timings;
    /// the canonicalize slot is filled by the merge phase).
    pub diag: DocResult,
}

impl DocStage1 {
    /// Approximate heap footprint in bytes — the eviction weight for
    /// byte-bounded stage-1 caches. Dominated by the semantic graph;
    /// clause projections, mention lists and resolutions are estimated
    /// from their counts.
    pub fn approx_bytes(&self) -> usize {
        let clause_bytes: usize = self
            .built
            .clauses
            .iter()
            .map(|c| {
                std::mem::size_of::<GraphClause>()
                    + c.verb_lemma.capacity()
                    + c.args.capacity() * std::mem::size_of::<GraphArg>()
                    + c.args.iter().map(|a| a.pattern.capacity()).sum::<usize>()
            })
            .sum();
        let extra_bytes: usize = self
            .built
            .extra_relations
            .iter()
            .map(|(_, _, pattern, _)| {
                pattern.capacity() + std::mem::size_of::<(NodeId, NodeId, String, usize)>()
            })
            .sum();
        std::mem::size_of::<Self>()
            + self.built.graph.approx_bytes()
            + clause_bytes
            + extra_bytes
            + self.built.mentions.capacity() * std::mem::size_of::<NodeId>()
            + self.outcome.resolutions.len()
                * (std::mem::size_of::<NodeId>() + std::mem::size_of::<MentionResolution>())
                * 2
    }
}

/// A compute-or-lookup source of per-document stage-1 artifacts.
///
/// [`Qkbfly::build_kb_with`] and [`Qkbfly::build_kb_grouped_with`] ask a
/// provider for each document's artifact instead of unconditionally
/// running [`Qkbfly::process_doc_stage1`]; a caching provider (the
/// serving layer's per-document LRU) returns memoized artifacts for
/// documents it has seen. Because stage 1 is a pure function of the
/// document text under a fixed configuration, any provider that returns
/// `qkb.process_doc_stage1(text)` — fresh or memoized — preserves the
/// byte-identity of the assembled KB with a cold build.
///
/// Providers are called concurrently from the per-document fan-out and
/// must be `Sync`.
pub trait Stage1Provider: Sync {
    /// The stage-1 artifact for one document text (computed or cached).
    fn provide(&self, qkb: &Qkbfly, text: &str) -> Arc<DocStage1>;
}

/// The trivial provider: always computes. `build_kb(docs)` is exactly
/// `build_kb_with(&ComputeStage1, docs)`.
pub struct ComputeStage1;

impl Stage1Provider for ComputeStage1 {
    fn provide(&self, qkb: &Qkbfly, text: &str) -> Arc<DocStage1> {
        Arc::new(qkb.process_doc_stage1(text))
    }
}

/// Streaming compute-or-lookup for the serial build paths: documents
/// that occur more than once in the batch are memoized so duplicates
/// share one artifact (and one provide call), while unique documents —
/// the overwhelmingly common case — pass straight through without being
/// retained, preserving the serial paths' one-artifact-resident memory
/// profile.
struct SeqProvider<'a, P: ?Sized> {
    qkb: &'a Qkbfly,
    provider: &'a P,
    /// Occurrence count per text; only texts counted > 1 are memoized.
    occurrences: FxHashMap<&'a str, u32>,
    memo: FxHashMap<&'a str, Arc<DocStage1>>,
}

impl<'a, P: Stage1Provider + ?Sized> SeqProvider<'a, P> {
    fn new(qkb: &'a Qkbfly, provider: &'a P, texts: impl Iterator<Item = &'a String>) -> Self {
        let mut occurrences: FxHashMap<&'a str, u32> = FxHashMap::default();
        for text in texts {
            *occurrences.entry(text.as_str()).or_insert(0) += 1;
        }
        Self {
            qkb,
            provider,
            occurrences,
            memo: FxHashMap::default(),
        }
    }

    fn provide(&mut self, text: &'a str) -> Arc<DocStage1> {
        if self.occurrences.get(text).copied().unwrap_or(0) <= 1 {
            return self.provider.provide(self.qkb, text);
        }
        self.memo
            .entry(text)
            .or_insert_with(|| self.provider.provide(self.qkb, text))
            .clone()
    }
}

/// Cumulative build counters, shared by every clone of a system handle.
///
/// Monotonic and lock-free; the serving layer reads them for its stats
/// snapshot, and tests use them as a hook to prove request coalescing
/// (K concurrent identical queries must trigger exactly one build).
#[derive(Debug, Default)]
pub struct BuildCounters {
    builds: AtomicU64,
    docs: AtomicU64,
    stage1_computed: AtomicU64,
    resolve_components: AtomicU64,
    ilp_variables: AtomicU64,
    bnb_nodes: AtomicU64,
    pruned_candidates: AtomicU64,
    resolve_cache_hits: AtomicU64,
    resolve_cache_misses: AtomicU64,
    resolve_cache_bypass: AtomicU64,
}

impl BuildCounters {
    /// KB builds started so far (a grouped build counts once per group).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Documents fed through builds so far (assembled or computed).
    pub fn docs(&self) -> u64 {
        self.docs.load(Ordering::Relaxed)
    }

    /// Stage-1 computations actually executed ([`Qkbfly::process_doc_stage1`]
    /// runs). With a caching [`Stage1Provider`], this lags [`BuildCounters::docs`]
    /// by exactly the documents served from cache — the test hook proving
    /// incremental reuse (two overlapping queries must add `|union|`, not
    /// `|A| + |B|`).
    pub fn stage1_computed(&self) -> u64 {
        self.stage1_computed.load(Ordering::Relaxed)
    }

    /// Cumulative resolve-stage counters across every stage-1 run.
    pub fn resolve(&self) -> ResolveCounters {
        ResolveCounters {
            components: self.resolve_components.load(Ordering::Relaxed),
            ilp_variables: self.ilp_variables.load(Ordering::Relaxed),
            bnb_nodes: self.bnb_nodes.load(Ordering::Relaxed),
            pruned_candidates: self.pruned_candidates.load(Ordering::Relaxed),
            cache_hits: self.resolve_cache_hits.load(Ordering::Relaxed),
            cache_misses: self.resolve_cache_misses.load(Ordering::Relaxed),
            cache_bypass: self.resolve_cache_bypass.load(Ordering::Relaxed),
        }
    }

    fn record(&self, builds: u64, docs: u64) {
        self.builds.fetch_add(builds, Ordering::Relaxed);
        self.docs.fetch_add(docs, Ordering::Relaxed);
    }

    fn record_stage1(&self) {
        self.stage1_computed.fetch_add(1, Ordering::Relaxed);
    }

    fn record_resolve(&self, c: &ResolveCounters) {
        self.resolve_components
            .fetch_add(c.components, Ordering::Relaxed);
        self.ilp_variables
            .fetch_add(c.ilp_variables, Ordering::Relaxed);
        self.bnb_nodes.fetch_add(c.bnb_nodes, Ordering::Relaxed);
        self.pruned_candidates
            .fetch_add(c.pruned_candidates, Ordering::Relaxed);
        self.resolve_cache_hits
            .fetch_add(c.cache_hits, Ordering::Relaxed);
        self.resolve_cache_misses
            .fetch_add(c.cache_misses, Ordering::Relaxed);
        self.resolve_cache_bypass
            .fetch_add(c.cache_bypass, Ordering::Relaxed);
    }
}

/// The QKBfly system: shares its background repositories (`Arc`, read-only
/// at query time) across worker threads and cloned handles, plus the
/// per-system configuration.
///
/// Cloning is cheap — repositories, background statistics and the NLP
/// pipeline are reference-counted, only the configuration is copied — so a
/// serving layer can hand each request thread its own handle.
#[derive(Clone)]
pub struct Qkbfly {
    repo: Arc<EntityRepository>,
    patterns: Arc<PatternRepository>,
    stats: Arc<BackgroundStats>,
    nlp: Arc<NlpPipeline>,
    clausie: Arc<ClausIe>,
    counters: Arc<BuildCounters>,
    recorder: Recorder,
    resolve_cache: Option<Arc<dyn ResolveCacheProvider>>,
    config: QkbflyConfig,
}

impl Qkbfly {
    /// System with default configuration (joint greedy, τ = 0.5).
    pub fn new(
        repo: EntityRepository,
        patterns: PatternRepository,
        stats: BackgroundStats,
    ) -> Self {
        Self::with_config(repo, patterns, stats, QkbflyConfig::default())
    }

    /// System with explicit configuration.
    pub fn with_config(
        repo: EntityRepository,
        patterns: PatternRepository,
        stats: BackgroundStats,
        config: QkbflyConfig,
    ) -> Self {
        let nlp = NlpPipeline::with_gazetteer(repo.gazetteer());
        Self {
            repo: Arc::new(repo),
            patterns: Arc::new(patterns),
            stats: Arc::new(stats),
            nlp: Arc::new(nlp),
            clausie: Arc::new(ClausIe::new()),
            counters: Arc::new(BuildCounters::default()),
            recorder: Recorder::disabled(),
            resolve_cache: None,
            config,
        }
    }

    /// The entity repository.
    pub fn repo(&self) -> &EntityRepository {
        &self.repo
    }

    /// The pattern repository.
    pub fn patterns(&self) -> &PatternRepository {
        &self.patterns
    }

    /// The background statistics.
    pub fn stats(&self) -> &BackgroundStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &QkbflyConfig {
        &self.config
    }

    /// Mutable configuration (for harness sweeps).
    pub fn config_mut(&mut self) -> &mut QkbflyConfig {
        &mut self.config
    }

    /// A new handle with the given per-document worker count, sharing the
    /// repositories with `self`. The builder-style counterpart of
    /// `config_mut().parallelism = n` for shared (`&Qkbfly`) handles —
    /// serving shards tune their build fan-out without mutable access.
    pub fn with_parallelism(&self, workers: usize) -> Self {
        self.with_config_override(|c| c.parallelism = workers)
    }

    /// A new handle with the given merge-phase shard count
    /// ([`QkbflyConfig::merge_parallelism`]), sharing the repositories
    /// with `self`. The built KB is byte-identical at any shard count.
    pub fn with_merge_parallelism(&self, shards: usize) -> Self {
        self.with_config_override(|c| c.merge_parallelism = shards)
    }

    /// A new handle with the given resolve-stage worker count
    /// ([`QkbflyConfig::resolve_parallelism`]), sharing the repositories
    /// with `self`. The built KB is byte-identical at any worker count.
    pub fn with_resolve_parallelism(&self, workers: usize) -> Self {
        self.with_config_override(|c| c.resolve_parallelism = workers)
    }

    /// A new handle with arbitrary configuration overrides applied on top
    /// of `self`'s configuration. Repositories, statistics and build
    /// counters stay shared with the parent handle.
    pub fn with_config_override(&self, adjust: impl FnOnce(&mut QkbflyConfig)) -> Self {
        let mut out = self.clone();
        adjust(&mut out.config);
        out
    }

    /// A new handle recording build spans into `recorder`
    /// ([`Recorder::disabled`] by default, which keeps the instrumented
    /// paths at near-zero cost). Repositories and counters stay shared.
    pub fn with_recorder(&self, recorder: Recorder) -> Self {
        let mut out = self.clone();
        out.recorder = recorder;
        out
    }

    /// The flight recorder this handle traces into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// A new handle resolving through the given component cache
    /// ([`ResolveCacheProvider`]): solved coupling components replay
    /// their cached assignment instead of re-entering the solver, with
    /// an exact structural re-check on every hit. The KB is
    /// byte-identical with or without the cache. The provider must only
    /// be shared between handles cloned from the same system (its keys
    /// abstract over this process's entity/symbol interning).
    /// Repositories and counters stay shared.
    pub fn with_resolve_cache(&self, cache: Arc<dyn ResolveCacheProvider>) -> Self {
        let mut out = self.clone();
        out.resolve_cache = Some(cache);
        out
    }

    /// Cumulative build counters shared across all clones of this handle.
    pub fn counters(&self) -> &BuildCounters {
        &self.counters
    }

    fn weight_model(&self) -> WeightModel {
        WeightModel {
            alphas: self.config.alphas,
            use_type_signatures: self.config.variant != Variant::PipelineArch,
        }
    }

    /// Builds an on-the-fly KB from the input documents (the paper's
    /// query-time path: documents were already retrieved for the query).
    ///
    /// The per-document phase ([`Qkbfly::process_doc_stage1`]) fans out
    /// over [`QkbflyConfig::parallelism`] worker threads; the merge phase
    /// ([`Qkbfly::merge_doc`]) then folds the per-document outputs into
    /// the shared KB **in document order**, so the result is byte-identical
    /// to the serial path for any worker count.
    pub fn build_kb(&self, docs: &[String]) -> BuildResult<'_> {
        self.build_kb_with(&ComputeStage1, docs)
    }

    /// [`Qkbfly::build_kb`] with stage-1 artifacts drawn from `provider`
    /// (compute-or-lookup) instead of always computed. Duplicate documents
    /// within the batch are provided once and share one artifact.
    ///
    /// **Invariant:** for any provider that honors the [`Stage1Provider`]
    /// contract, the result is byte-identical to a cold `build_kb` over
    /// the same documents in the same order — the merge phase alone
    /// assigns document indices and canonical KB identifiers.
    pub fn build_kb_with(
        &self,
        provider: &(impl Stage1Provider + ?Sized),
        docs: &[String],
    ) -> BuildResult<'_> {
        self.counters.record(1, docs.len() as u64);
        let mut span = self.recorder.span("build_kb");
        span.field("docs", docs.len());
        let workers = qkb_util::effective_parallelism(self.config.parallelism);
        if workers <= 1 || docs.len() <= 1 {
            // Serial path: provide-and-merge one document at a time —
            // only duplicated documents' artifacts are retained for
            // sharing, so an all-distinct batch keeps a single
            // document's stage-1 state resident.
            let mut seq = SeqProvider::new(self, provider, docs.iter());
            self.assemble(docs.iter().map(move |text| seq.provide(text)))
        } else {
            self.assemble(self.provide_all(provider, docs.iter(), workers).into_iter())
        }
    }

    /// Builds one on-the-fly KB **per document group**, fanning the pure
    /// per-document phase out over the union of all groups' documents.
    ///
    /// This is the admission-batching entry point of the serving layer:
    /// several queued queries (each with its own retrieved-document set)
    /// share one parallel fan-out instead of paying the ramp-up per query.
    /// Each group is merged independently in its own document order, so
    /// every returned `BuildResult` is **byte-identical** to what
    /// `build_kb` would produce for that group alone.
    pub fn build_kb_grouped(&self, groups: &[Vec<String>]) -> Vec<BuildResult<'_>> {
        self.build_kb_grouped_with(&ComputeStage1, groups)
    }

    /// [`Qkbfly::build_kb_grouped`] with stage-1 artifacts drawn from
    /// `provider`. The union of all groups' documents is de-duplicated
    /// first, so a document retrieved by several queued queries runs (or
    /// is looked up) exactly once per batch, and every group is assembled
    /// from the shared artifacts. Byte-identity with per-group cold
    /// builds holds as for [`Qkbfly::build_kb_with`].
    pub fn build_kb_grouped_with(
        &self,
        provider: &(impl Stage1Provider + ?Sized),
        groups: &[Vec<String>],
    ) -> Vec<BuildResult<'_>> {
        let total_docs: usize = groups.iter().map(Vec::len).sum();
        self.counters.record(groups.len() as u64, total_docs as u64);
        let mut span = self.recorder.span("build_kb_grouped");
        span.field("groups", groups.len());
        span.field("docs", total_docs);
        let workers = qkb_util::effective_parallelism(self.config.parallelism);
        if workers <= 1 || total_docs <= 1 {
            // Serial path: stream provide-and-merge group by group,
            // sharing artifacts across the batch's duplicate documents
            // without materializing the whole union.
            let mut seq = SeqProvider::new(self, provider, groups.iter().flatten());
            return groups
                .iter()
                .map(|docs| self.assemble(docs.iter().map(|text| seq.provide(text))))
                .collect();
        }
        let mut stage1 = self
            .provide_all(provider, groups.iter().flatten(), workers)
            .into_iter();
        groups
            .iter()
            .map(|docs| self.assemble(stage1.by_ref().take(docs.len())))
            .collect()
    }

    /// Assembles one on-the-fly KB from already-provided stage-1
    /// artifacts, merged **in slice order** — the incremental-construction
    /// entry point. The artifacts are shared, not consumed: the same
    /// `Arc<DocStage1>` can appear in any number of assemblies (and any
    /// position), and the output is byte-identical to a cold
    /// [`Qkbfly::build_kb`] over the same documents in the same order.
    pub fn assemble_from(&self, stage1: &[Arc<DocStage1>]) -> BuildResult<'_> {
        self.counters.record(1, stage1.len() as u64);
        self.assemble(stage1.iter().cloned())
    }

    /// The **incremental canonicalizer**: streams new stage-1 artifacts
    /// into an *existing* KB, continuing the deterministic document-order
    /// fold a cold build performs — the session-scoped serving path's
    /// "extend, don't rebuild" primitive.
    ///
    /// Artifacts whose document is already resident in `kb` (by text
    /// fingerprint) are **skipped idempotently**; fresh artifacts are
    /// merged in slice order with the next free provenance index. Because
    /// [`qkb_kb::OnTheFlyKb`] is append-only — entities and facts are only
    /// ever pushed, and [`qkb_kb::OnTheFlyKb::add_linked`] resolves a
    /// repository entity seen before to its existing id — extending never
    /// renumbers an existing entity id or rewrites an existing fact:
    /// the KB before the call is a strict prefix of the KB after.
    ///
    /// **Union equivalence:** streaming a duplicate-free document
    /// sequence through any series of `extend_kb` calls (any split, any
    /// per-turn parallelism used to *provide* the artifacts) produces a
    /// KB byte-identical to one cold [`Qkbfly::build_kb`] over the whole
    /// sequence, because both paths execute the same
    /// [`Qkbfly::merge_doc_ref`] folds in the same order with the same
    /// indices (property-tested in `tests/properties.rs`).
    ///
    /// `kb` must have been grown exclusively by the recording builders
    /// (`build_kb*`, [`Qkbfly::assemble_from`], `extend_kb` — starting
    /// from [`qkb_kb::OnTheFlyKb::new`]), so its document registry and
    /// provenance indices agree.
    pub fn extend_kb(&self, kb: &mut OnTheFlyKb, stage1: &[Arc<DocStage1>]) -> ExtendOutcome {
        let mut span = self.recorder.span("extend_kb");
        let mut outcome = ExtendOutcome::default();
        // Select the fresh artifacts up front (resident documents and
        // repeats within the slice are skipped idempotently), so the
        // sharded merge can decide all their clusters in one fan-out.
        let mut in_call: qkb_util::FxHashSet<u64> = qkb_util::FxHashSet::default();
        let fresh: Vec<Arc<DocStage1>> = stage1
            .iter()
            .filter(|a| {
                if kb.contains_doc(a.fingerprint) || !in_call.insert(a.fingerprint) {
                    outcome.skipped += 1;
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();
        for (_, diag) in self.merge_in_order(kb, &fresh) {
            outcome.timings.add(&diag.timings);
            outcome.merged += 1;
        }
        self.counters.record(1, outcome.merged as u64);
        span.field("merged", outcome.merged);
        span.field("deduped", outcome.skipped);
        outcome
    }

    /// Provides and streams `texts` into an existing KB in one call —
    /// the composition of [`Qkbfly::provide_stage1`] and
    /// [`Qkbfly::extend_kb`] session layers build on. Documents already
    /// resident in `kb` are skipped **without being provided** (no
    /// stage-1 compute, no cache traffic), in-call duplicates are
    /// provided once, and the rest extend the KB in slice order; skipped
    /// documents of either kind count into
    /// [`ExtendOutcome::skipped`].
    pub fn stream_into_kb(
        &self,
        provider: &(impl Stage1Provider + ?Sized),
        kb: &mut OnTheFlyKb,
        texts: &[String],
    ) -> ExtendOutcome {
        let mut span = self.recorder.span("stream_into_kb");
        span.field("docs", texts.len());
        let mut in_call: qkb_util::FxHashSet<u64> = qkb_util::FxHashSet::default();
        let mut resident = 0usize;
        let fresh: Vec<&String> = texts
            .iter()
            .filter(|text| {
                let fp = qkb_util::fingerprint64(text.as_bytes());
                if kb.contains_doc(fp) || !in_call.insert(fp) {
                    resident += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        let artifacts = self.provide_stage1(provider, fresh);
        let mut outcome = self.extend_kb(kb, &artifacts);
        outcome.skipped += resident;
        span.field("resident_skipped", resident);
        outcome
    }

    /// Provides stage-1 artifacts for `texts` in order through `provider`
    /// (compute-or-lookup), fanning distinct documents out over
    /// [`QkbflyConfig::parallelism`] workers exactly like the build entry
    /// points — the public half of the provide+merge split for callers
    /// that merge through [`Qkbfly::extend_kb`] instead of assembling a
    /// fresh KB.
    pub fn provide_stage1<'t>(
        &self,
        provider: &(impl Stage1Provider + ?Sized),
        texts: impl IntoIterator<Item = &'t String>,
    ) -> Vec<Arc<DocStage1>> {
        let workers = qkb_util::effective_parallelism(self.config.parallelism);
        self.provide_all(provider, texts.into_iter(), workers)
    }

    /// Provides stage-1 artifacts for `texts` in order, de-duplicated by
    /// text: each distinct document is provided exactly once (fanned out
    /// over `workers` threads when it pays) and duplicates share the Arc.
    fn provide_all<'t>(
        &self,
        provider: &(impl Stage1Provider + ?Sized),
        texts: impl Iterator<Item = &'t String>,
        workers: usize,
    ) -> Vec<Arc<DocStage1>> {
        let texts: Vec<&String> = texts.collect();
        let mut unique: Vec<&String> = Vec::new();
        let mut slot_of: FxHashMap<&str, usize> = FxHashMap::default();
        let slots: Vec<usize> = texts
            .iter()
            .map(|text| {
                *slot_of.entry(text.as_str()).or_insert_with(|| {
                    unique.push(text);
                    unique.len() - 1
                })
            })
            .collect();
        let provided: Vec<Arc<DocStage1>> = if workers <= 1 || unique.len() <= 1 {
            unique
                .iter()
                .map(|text| provider.provide(self, text))
                .collect()
        } else {
            // Carry the caller's span across the fan-out so per-document
            // stage-1 spans nest under the build span on worker threads.
            let parent = self.recorder.current();
            qkb_util::par_map_ordered(&unique, workers, |_, text| {
                let _cx = self.recorder.context(parent);
                provider.provide(self, text)
            })
        };
        slots.into_iter().map(|s| provided[s].clone()).collect()
    }

    /// Folds per-document stage-1 outputs, **in document order**, into one
    /// canonicalized KB with its assessment records and diagnostics.
    ///
    /// With [`QkbflyConfig::merge_parallelism`] ≤ 1 this streams the
    /// iterator (one artifact resident at a time on the serial provide
    /// paths); with more shards the artifacts are collected and their
    /// cluster decisions computed on ownership shards before the same
    /// document-order reduce runs — byte-identical either way.
    fn assemble(&self, stage1_seq: impl Iterator<Item = Arc<DocStage1>>) -> BuildResult<'_> {
        let mut kb = OnTheFlyKb::new();
        let mut records = Vec::new();
        let mut links = Vec::new();
        let mut timings = StageTimings::default();
        let mut per_doc = Vec::new();
        let mut fold = |d: usize, out: DocCanonOutput, diag: DocResult| {
            timings.add(&diag.timings);
            for (extraction, kept, slot_entities) in out.extractions {
                records.push(ExtractionRecord {
                    doc: d,
                    extraction,
                    kept,
                    slot_entities,
                });
            }
            for (sentence, phrase, entity, confidence) in out.links {
                links.push(LinkRecord {
                    doc: d,
                    sentence,
                    phrase,
                    entity,
                    confidence,
                });
            }
            per_doc.push(diag);
        };
        if self.merge_shards() <= 1 {
            for (d, stage1) in stage1_seq.enumerate() {
                let (out, diag) = self.merge_doc_ref(&mut kb, &stage1, d as u32);
                kb.record_doc(stage1.fingerprint);
                fold(d, out, diag);
            }
        } else {
            let artifacts: Vec<Arc<DocStage1>> = stage1_seq.collect();
            for (d, (out, diag)) in self
                .merge_in_order(&mut kb, &artifacts)
                .into_iter()
                .enumerate()
            {
                fold(d, out, diag);
            }
        }
        BuildResult {
            kb,
            records,
            links,
            timings,
            per_doc,
            patterns: &self.patterns,
        }
    }

    /// Effective merge-phase shard count (`merge_parallelism` resolved:
    /// `0` = all cores, `1` = the serial fold).
    fn merge_shards(&self) -> usize {
        match self.config.merge_parallelism {
            1 => 1,
            n => qkb_util::effective_parallelism(n),
        }
    }

    /// The canonicalization parameters of this handle.
    fn canon_config(&self) -> CanonConfig {
        CanonConfig {
            tau: self.config.tau,
            low_link: self.config.low_link,
            emit_nary: self.config.emit_nary,
        }
    }

    /// Merges `artifacts` into `kb` in slice order, continuing at the
    /// KB's next provenance index — through the serial fold, or through
    /// the sharded decide + document-order reduce when
    /// [`QkbflyConfig::merge_parallelism`] asks for shards. Does **not**
    /// de-duplicate: callers pass exactly the artifacts to merge.
    fn merge_in_order(
        &self,
        kb: &mut OnTheFlyKb,
        artifacts: &[Arc<DocStage1>],
    ) -> Vec<(DocCanonOutput, DocResult)> {
        let shards = self.merge_shards();
        if shards <= 1 {
            return artifacts
                .iter()
                .map(|artifact| {
                    let doc_idx = kb.n_docs() as u32;
                    let merged = self.merge_doc_ref(kb, artifact, doc_idx);
                    kb.record_doc(artifact.fingerprint);
                    merged
                })
                .collect();
        }
        let planned = self.decide_sharded(artifacts, shards);
        let canon = self.canon_config();
        artifacts
            .iter()
            .zip(planned)
            .map(|(artifact, (plan, decisions))| {
                let doc_idx = kb.n_docs() as u32;
                let mut diag = artifact.diag.clone();
                let t = Instant::now();
                let mut apply_span = self.recorder.span("canon_apply");
                apply_span.field("doc", doc_idx);
                let out = apply_decisions(
                    kb,
                    &artifact.built,
                    &plan,
                    &decisions,
                    &self.patterns,
                    canon,
                    doc_idx,
                );
                drop(apply_span);
                // The reduce's wall clock; the shards' decide time is
                // concurrent and not attributed per document.
                diag.timings.canonicalize = t.elapsed();
                kb.record_doc(artifact.fingerprint);
                (out, diag)
            })
            .collect()
    }

    /// The parallel half of the sharded merge: plans every document's
    /// clusters, distributes the `(document, cluster)` work items over
    /// `shards` ownership shards (`ownership % shards` — the hash of the
    /// canonical repository id, or the novel-cluster key), and computes
    /// each cluster's [`ClusterDecision`] concurrently. Decisions are
    /// pure in the artifacts, so the scatter back into per-document,
    /// plan-order vectors is deterministic regardless of shard count or
    /// scheduling.
    fn decide_sharded(
        &self,
        artifacts: &[Arc<DocStage1>],
        shards: usize,
    ) -> Vec<(ClusterPlan, Vec<ClusterDecision>)> {
        let mut decide_span = self.recorder.span("canon_decide");
        decide_span.field("shards", shards);
        decide_span.field("docs", artifacts.len());
        let canon = self.canon_config();
        let plans: Vec<ClusterPlan> = qkb_util::par_map_ordered(artifacts, shards, |_, a| {
            plan_clusters(&a.built, &a.outcome)
        });
        let mut shard_items: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
        for (d, plan) in plans.iter().enumerate() {
            for (c, cluster) in plan.clusters.iter().enumerate() {
                shard_items[(cluster.ownership % shards as u64) as usize].push((d, c));
            }
        }
        let decided: Vec<Vec<(usize, usize, ClusterDecision)>> =
            qkb_util::par_map_ordered(&shard_items, shards, |_, items| {
                items
                    .iter()
                    .map(|&(d, c)| {
                        let artifact = &artifacts[d];
                        let decision = decide_cluster(
                            &artifact.built,
                            &artifact.outcome,
                            &self.repo,
                            canon,
                            &plans[d].clusters[c],
                        );
                        (d, c, decision)
                    })
                    .collect()
            });
        let mut decisions: Vec<Vec<Option<ClusterDecision>>> = plans
            .iter()
            .map(|p| p.clusters.iter().map(|_| None).collect())
            .collect();
        for (d, c, decision) in decided.into_iter().flatten() {
            decisions[d][c] = Some(decision);
        }
        plans
            .into_iter()
            .zip(decisions)
            .map(|(plan, ds)| {
                let ds: Vec<ClusterDecision> = ds
                    .into_iter()
                    .map(|d| d.expect("every cluster owned by exactly one shard"))
                    .collect();
                (plan, ds)
            })
            .collect()
    }

    /// The pure per-document phase: NLP preprocessing, clause detection,
    /// semantic-graph construction and joint NED+CR inference. Reads only
    /// the shared repositories — safe to run concurrently for the
    /// documents of a batch.
    pub fn process_doc_stage1(&self, text: &str) -> DocStage1 {
        self.counters.record_stage1();
        let span = self.recorder.span("stage1");
        let mut diag = DocResult::default();

        // --- pre-processing (the CoreNLP + MaltParser + ClausIE stack) ---
        let t0 = Instant::now();
        let pre_span = self.recorder.span("preprocess");
        let doc = self.nlp.annotate(text);
        let clauses: Vec<Vec<Clause>> = doc
            .sentences
            .iter()
            .map(|s| self.clausie.detect(s))
            .collect();
        drop(pre_span);
        diag.timings.preprocess = t0.elapsed();

        // --- stage 1: semantic graph ---
        let t1 = Instant::now();
        let graph_span = self.recorder.span("graph");
        let mut built = build_graph(
            &doc,
            &clauses,
            &self.repo,
            &self.stats,
            BuildConfig {
                pronoun_window: self.config.pronoun_window,
                use_pronouns: self.config.variant != Variant::NounOnly,
            },
        );
        drop(graph_span);
        diag.timings.graph = t1.elapsed();
        diag.graph_size = (built.graph.n_nodes(), built.graph.n_edges());

        // --- stage 2: joint NED + CR ---
        let t2 = Instant::now();
        let mut resolve_span = self.recorder.span("resolve");
        let model = self.weight_model();
        let mentions = built.mentions.clone();
        let outcome = match (self.config.variant, self.config.solver) {
            (Variant::PipelineArch, _) => {
                let mut res = resolve_independent(&built.graph, &mentions, &model, &self.stats);
                resolve_pronouns_by_recency(&built.graph, &mentions, &mut res, &self.repo);
                apply_resolutions(&mut built.graph, &mentions, &res);
                crate::densify::DensifyOutcome {
                    resolutions: res,
                    objective: 0.0,
                    removed_edges: 0,
                }
            }
            (_, SolverKind::Ilp) => {
                let (out, components, tally) = if self.config.resolve_decomposition {
                    resolve_ilp_decomposed(
                        &built.graph,
                        &mentions,
                        &model,
                        &self.stats,
                        &self.repo,
                        qkb_util::effective_parallelism(self.config.resolve_parallelism),
                        IlpSolveOptions {
                            prune: true,
                            warm_start: true,
                            node_limit: self.config.ilp_node_budget,
                        },
                        self.resolve_cache.as_deref(),
                        &self.recorder,
                    )
                } else {
                    // Monolithic cold baseline: one big program, no
                    // pruning, no warm start, no component cache.
                    let out = resolve_ilp(&built.graph, &mentions, &model, &self.stats, &self.repo);
                    (out, 1, Default::default())
                };
                diag.resolve = ResolveCounters {
                    components: components as u64,
                    ilp_variables: out.n_variables as u64,
                    bnb_nodes: out.nodes,
                    pruned_candidates: out.pruned_candidates as u64,
                    cache_hits: tally.hits,
                    cache_misses: tally.misses,
                    cache_bypass: tally.bypass,
                };
                apply_resolutions(&mut built.graph, &mentions, &out.resolutions);
                crate::densify::DensifyOutcome {
                    resolutions: out.resolutions,
                    objective: out.objective,
                    removed_edges: 0,
                }
            }
            (_, SolverKind::Greedy) => {
                if self.config.resolve_decomposition {
                    let (out, components, tally) = densify_decomposed(
                        &mut built.graph,
                        &mentions,
                        &model,
                        &self.stats,
                        &self.repo,
                        qkb_util::effective_parallelism(self.config.resolve_parallelism),
                        self.resolve_cache.as_deref(),
                        &self.recorder,
                    );
                    diag.resolve.components = components as u64;
                    diag.resolve.cache_hits = tally.hits;
                    diag.resolve.cache_misses = tally.misses;
                    diag.resolve.cache_bypass = tally.bypass;
                    out
                } else {
                    diag.resolve.components = 1;
                    densify(&mut built.graph, &mentions, &model, &self.stats, &self.repo)
                }
            }
        };
        // ResolveCounters folded in as span fields.
        resolve_span.field("components", diag.resolve.components);
        resolve_span.field("ilp_variables", diag.resolve.ilp_variables);
        resolve_span.field("bnb_nodes", diag.resolve.bnb_nodes);
        resolve_span.field("pruned_candidates", diag.resolve.pruned_candidates);
        resolve_span.field("cache_hits", diag.resolve.cache_hits);
        resolve_span.field("cache_misses", diag.resolve.cache_misses);
        resolve_span.field("cache_bypass", diag.resolve.cache_bypass);
        drop(resolve_span);
        diag.timings.resolve = t2.elapsed();
        self.counters.record_resolve(&diag.resolve);
        drop(span);

        DocStage1 {
            fingerprint: qkb_util::fingerprint64(text.as_bytes()),
            built,
            outcome,
            diag,
        }
    }

    /// The merge phase: canonicalizes one document's stage-1 output into
    /// the shared KB. Must be called in document order for deterministic
    /// KB identifiers.
    pub fn merge_doc(
        &self,
        kb: &mut OnTheFlyKb,
        stage1: DocStage1,
        doc_idx: u32,
    ) -> (DocCanonOutput, DocResult) {
        self.merge_doc_ref(kb, &stage1, doc_idx)
    }

    /// [`Qkbfly::merge_doc`] over a borrowed artifact: the stage-1 output
    /// is read, not consumed, so one cached `Arc<DocStage1>` can be merged
    /// into any number of KBs.
    pub fn merge_doc_ref(
        &self,
        kb: &mut OnTheFlyKb,
        stage1: &DocStage1,
        doc_idx: u32,
    ) -> (DocCanonOutput, DocResult) {
        let mut diag = stage1.diag.clone();
        let t3 = Instant::now();
        let mut span = self.recorder.span("canonicalize");
        span.field("doc", doc_idx);
        let out = canonicalize_into(
            kb,
            &stage1.built,
            &stage1.outcome,
            &self.repo,
            &self.patterns,
            self.canon_config(),
            doc_idx,
        );
        drop(span);
        diag.timings.canonicalize = t3.elapsed();
        (out, diag)
    }

    /// Processes one document into the shared KB (stage 1 + merge in one
    /// step — the serial building block, kept for harnesses that stream
    /// documents one at a time).
    pub fn process_doc(
        &self,
        kb: &mut OnTheFlyKb,
        text: &str,
        doc_idx: u32,
    ) -> (DocCanonOutput, DocResult) {
        let stage1 = self.process_doc_stage1(text);
        self.merge_doc(kb, stage1, doc_idx)
    }
}

// The batch fan-out borrows `&Qkbfly` from worker threads; keep the whole
// system (and the shared-read structures it hands out) `Send + Sync` by
// construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Qkbfly>();
    assert_send_sync::<DocStage1>();
};

/// Prunes the graph's `means`/`sameAs` edges to reflect externally computed
/// resolutions (ILP and pipeline variants), so canonicalization sees the
/// same clustered structure the greedy path produces.
fn apply_resolutions(
    graph: &mut SemanticGraph,
    mentions: &[NodeId],
    resolutions: &FxHashMap<NodeId, MentionResolution>,
) {
    // Means edges: keep only the chosen entity per noun phrase.
    for &n in mentions {
        if !matches!(graph.node(n), NodeKind::NounPhrase { .. }) {
            continue;
        }
        let chosen = resolutions.get(&n).and_then(|r| r.entity);
        let edges = graph.means_of(n);
        for (edge, e) in edges {
            if Some(e) != chosen {
                graph.kill_edge(edge);
            }
        }
    }
    // Pronoun sameAs: keep only the chosen antecedent.
    for &n in mentions {
        if !matches!(graph.node(n), NodeKind::Pronoun { .. }) {
            continue;
        }
        let antecedent = resolutions.get(&n).and_then(|r| r.antecedent);
        for (edge, other) in graph.same_as_of(n) {
            if Some(other) != antecedent {
                graph.kill_edge(edge);
            }
        }
    }
    // NP–NP sameAs: split clusters whose members resolved differently.
    for &n in mentions {
        if !matches!(graph.node(n), NodeKind::NounPhrase { .. }) {
            continue;
        }
        let ea = resolutions.get(&n).and_then(|r| r.entity);
        for (edge, other) in graph.same_as_of(n) {
            if !matches!(graph.node(other), NodeKind::NounPhrase { .. }) {
                continue;
            }
            let eb = resolutions.get(&other).and_then(|r| r.entity);
            if let (Some(a), Some(b)) = (ea, eb) {
                if a != b {
                    graph.kill_edge(edge);
                }
            }
        }
    }
    // Cosmetic faithfulness to Algorithm 1: entity nodes left without any
    // live means edge are implicitly removed (they are simply unreachable).
    let _ = EdgeKind::Means;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::{Gender, StatsBuilder};

    fn system(variant: Variant, solver: SolverKind) -> Qkbfly {
        let mut repo = EntityRepository::new();
        let actor = repo.type_system().get("ACTOR").expect("t");
        let org = repo.type_system().get("FOUNDATION").expect("t");
        let pitt = repo.add_entity("Brad Pitt", &["Pitt"], Gender::Male, vec![actor]);
        let one = repo.add_entity(
            "ONE Campaign",
            &["the ONE Campaign"],
            Gender::Neutral,
            vec![org],
        );
        let dpf = repo.add_entity("Daniel Pearl Foundation", &[], Gender::Neutral, vec![org]);
        let mut b = StatsBuilder::new();
        b.add_anchor("Brad Pitt", pitt);
        b.add_anchor("Pitt", pitt);
        b.add_anchor("ONE Campaign", one);
        b.add_anchor("Daniel Pearl Foundation", dpf);
        b.add_entity_article(pitt, ["actor", "film", "support", "donate"]);
        b.add_entity_article(one, ["campaign", "poverty", "support"]);
        b.add_entity_article(dpf, ["foundation", "journalist", "donate"]);
        let stats = b.finalize();
        let patterns = PatternRepository::standard();
        Qkbfly::with_config(
            repo,
            patterns,
            stats,
            QkbflyConfig {
                variant,
                solver,
                ..Default::default()
            },
        )
    }

    const FIG2: &str = "Brad Pitt is an actor and he supports the ONE Campaign. \
         In 2002, Pitt donated $100,000 to the Daniel Pearl Foundation.";

    #[test]
    fn joint_greedy_builds_figure2_kb() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let result = sys.build_kb(&[FIG2.to_string()]);
        assert!(result.kb.n_facts() >= 2, "facts: {}", result.kb.n_facts());
        let rendered: Vec<String> = result.kb.iter_facts().map(|f| result.render(f)).collect();
        // The pronoun-mediated support fact must resolve to Brad Pitt.
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("Brad Pitt") && r.contains("support")),
            "rendered: {rendered:?}"
        );
        // The SVOA clause yields a quadruple.
        assert!(
            result.kb.iter_facts().any(|f| f.arity() == 4),
            "rendered: {rendered:?}"
        );
        assert!(result.timings.total() > Duration::ZERO);
    }

    #[test]
    fn noun_only_produces_no_pronoun_facts() {
        let sys = system(Variant::NounOnly, SolverKind::Greedy);
        let result = sys.build_kb(&[FIG2.to_string()]);
        // fewer extractions than the joint variant (the pronoun clause is
        // dropped), but the donation fact remains
        let rendered: Vec<String> = result.kb.iter_facts().map(|f| result.render(f)).collect();
        assert!(
            rendered.iter().any(|r| r.contains("Daniel Pearl")),
            "rendered: {rendered:?}"
        );
        let joint_sys = system(Variant::Joint, SolverKind::Greedy);
        let joint = joint_sys.build_kb(&[FIG2.to_string()]);
        assert!(result.records.len() <= joint.records.len());
    }

    #[test]
    fn pipeline_variant_runs_and_links() {
        let sys = system(Variant::PipelineArch, SolverKind::Greedy);
        let result = sys.build_kb(&[FIG2.to_string()]);
        assert!(!result.links.is_empty());
        assert!(result.kb.n_facts() >= 1);
    }

    #[test]
    fn ilp_variant_matches_joint_on_simple_input() {
        let greedy_sys = system(Variant::Joint, SolverKind::Greedy);
        let greedy = greedy_sys.build_kb(&[FIG2.to_string()]);
        let ilp_sys = system(Variant::Joint, SolverKind::Ilp);
        let ilp = ilp_sys.build_kb(&[FIG2.to_string()]);
        assert!(ilp.per_doc[0].resolve.ilp_variables > 0);
        assert!(ilp.per_doc[0].resolve.components >= 1);
        assert!(ilp_sys.counters().resolve().ilp_variables > 0);
        // Same subject resolution for the supports fact.
        let has = |r: &BuildResult<'_>| {
            r.kb.iter_facts()
                .map(|f| r.render(f))
                .any(|s| s.contains("Brad Pitt") && s.contains("support"))
        };
        assert_eq!(has(&greedy), has(&ilp));
    }

    #[test]
    fn timings_are_populated_per_stage() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let result = sys.build_kb(&[FIG2.to_string()]);
        let t = &result.per_doc[0].timings;
        assert!(t.preprocess > Duration::ZERO);
        assert!(t.total() >= t.preprocess);
        assert!(result.per_doc[0].graph_size.0 > 0);
    }

    #[test]
    fn grouped_build_matches_individual_builds() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let groups = vec![
            vec![FIG2.to_string()],
            vec![
                "Brad Pitt supported the ONE Campaign.".to_string(),
                "Pitt donated $100,000 to the Daniel Pearl Foundation.".to_string(),
            ],
            vec![],
        ];
        for workers in [1usize, 4] {
            let handle = sys.with_parallelism(workers);
            let grouped = handle.build_kb_grouped(&groups);
            assert_eq!(grouped.len(), groups.len());
            for (result, docs) in grouped.iter().zip(&groups) {
                let solo = sys.build_kb(docs);
                assert_eq!(
                    result.kb.to_json(sys.patterns()).to_string(),
                    solo.kb.to_json(sys.patterns()).to_string(),
                    "grouped KB must be byte-identical to a solo build"
                );
                assert_eq!(result.records.len(), solo.records.len());
                assert_eq!(result.per_doc.len(), docs.len());
            }
        }
    }

    #[test]
    fn assemble_from_matches_cold_build_in_any_order() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let docs = vec![
            FIG2.to_string(),
            "Brad Pitt supported the ONE Campaign.".to_string(),
            "Pitt donated $100,000 to the Daniel Pearl Foundation.".to_string(),
        ];
        let stage1: Vec<Arc<DocStage1>> = docs
            .iter()
            .map(|t| Arc::new(sys.process_doc_stage1(t)))
            .collect();
        let kb_json = |r: &BuildResult<'_>| r.kb.to_json(sys.patterns()).to_string();
        // Same order: assembled == cold, byte for byte.
        let assembled = sys.assemble_from(&stage1);
        let cold = sys.build_kb(&docs);
        assert_eq!(kb_json(&assembled), kb_json(&cold));
        assert_eq!(assembled.records.len(), cold.records.len());
        // Reversed order: the same Arcs re-merge into the reversed build.
        let rev: Vec<Arc<DocStage1>> = stage1.iter().rev().cloned().collect();
        let rev_docs: Vec<String> = docs.iter().rev().cloned().collect();
        assert_eq!(
            kb_json(&sys.assemble_from(&rev)),
            kb_json(&sys.build_kb(&rev_docs))
        );
        // A subset sharing artifacts with the full set still matches.
        let pair = [stage1[0].clone(), stage1[2].clone()];
        let pair_docs = vec![docs[0].clone(), docs[2].clone()];
        assert_eq!(
            kb_json(&sys.assemble_from(&pair)),
            kb_json(&sys.build_kb(&pair_docs))
        );
    }

    #[test]
    fn extend_kb_streams_to_the_cold_union_build() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let docs = vec![
            FIG2.to_string(),
            "Brad Pitt supported the ONE Campaign.".to_string(),
            "Pitt donated $100,000 to the Daniel Pearl Foundation.".to_string(),
        ];
        let stage1: Vec<Arc<DocStage1>> = docs
            .iter()
            .map(|t| Arc::new(sys.process_doc_stage1(t)))
            .collect();
        // Stream in two turns whose sets overlap on doc 1.
        let mut kb = OnTheFlyKb::new();
        let first = sys.extend_kb(&mut kb, &stage1[..2]);
        assert_eq!((first.merged, first.skipped), (2, 0));
        let names_before: Vec<String> = kb.iter_entities().map(|e| e.name.clone()).collect();
        let facts_before = kb.n_facts();
        let second = sys.extend_kb(&mut kb, &[stage1[1].clone(), stage1[2].clone()]);
        assert_eq!((second.merged, second.skipped), (1, 1));
        // Id stability: the pre-extend KB is a strict prefix of the
        // extended one.
        assert_eq!(
            names_before.as_slice(),
            &kb.iter_entities()
                .map(|e| e.name.clone())
                .collect::<Vec<_>>()[..names_before.len()]
        );
        assert!(kb.n_facts() >= facts_before);
        // Union equivalence: byte-identical to one cold build of the
        // de-duplicated sequence.
        let cold = sys.build_kb(&docs);
        assert_eq!(
            kb.to_json(sys.patterns()).to_string(),
            cold.kb.to_json(sys.patterns()).to_string()
        );
        assert_eq!(kb.n_docs(), 3);
        // Replaying any turn is a no-op.
        let replay = sys.extend_kb(&mut kb, &stage1);
        assert_eq!((replay.merged, replay.skipped), (0, 3));
        assert_eq!(
            kb.to_json(sys.patterns()).to_string(),
            cold.kb.to_json(sys.patterns()).to_string()
        );
    }

    #[test]
    fn provide_stage1_is_order_preserving_and_deduplicated() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let texts = vec![
            FIG2.to_string(),
            "Brad Pitt supported the ONE Campaign.".to_string(),
            FIG2.to_string(),
        ];
        for workers in [1usize, 4] {
            let handle = sys.with_parallelism(workers);
            let before = handle.counters().stage1_computed();
            let provided = handle.provide_stage1(&ComputeStage1, &texts);
            assert_eq!(provided.len(), 3);
            assert_eq!(
                handle.counters().stage1_computed() - before,
                2,
                "duplicates must share one compute (workers={workers})"
            );
            assert!(Arc::ptr_eq(&provided[0], &provided[2]));
            assert_eq!(
                provided[0].fingerprint,
                qkb_util::fingerprint64(FIG2.as_bytes())
            );
            assert_ne!(provided[0].fingerprint, provided[1].fingerprint);
        }
    }

    #[test]
    fn duplicate_documents_in_a_batch_compute_stage1_once() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let before = sys.counters().stage1_computed();
        let grouped = sys.build_kb_grouped(&[
            vec![FIG2.to_string()],
            vec![FIG2.to_string(), FIG2.to_string()],
        ]);
        assert_eq!(
            sys.counters().stage1_computed() - before,
            1,
            "the grouped union must be de-duplicated"
        );
        // Both groups are still byte-identical to their solo builds.
        let solo = sys.build_kb(&[FIG2.to_string(), FIG2.to_string()]);
        assert_eq!(
            grouped[1].kb.to_json(sys.patterns()).to_string(),
            solo.kb.to_json(sys.patterns()).to_string()
        );
        assert_eq!(sys.counters().docs() - 3, solo.per_doc.len() as u64);
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_serial_fold() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let docs = vec![
            FIG2.to_string(),
            "Brad Pitt supported the ONE Campaign.".to_string(),
            "Pitt donated $100,000 to the Daniel Pearl Foundation.".to_string(),
        ];
        let serial = sys.build_kb(&docs);
        let serial_json = serial.kb.to_json(sys.patterns()).to_string();
        for shards in [2usize, 3, 8] {
            let handle = sys.with_merge_parallelism(shards);
            let sharded = handle.build_kb(&docs);
            assert_eq!(
                serial_json,
                sharded.kb.to_json(sys.patterns()).to_string(),
                "sharded merge diverged at {shards} shards"
            );
            assert_eq!(serial.records.len(), sharded.records.len());
            assert_eq!(serial.links.len(), sharded.links.len());
        }
        // The streaming extend path shards identically.
        let stage1: Vec<Arc<DocStage1>> = docs
            .iter()
            .map(|t| Arc::new(sys.process_doc_stage1(t)))
            .collect();
        for shards in [2usize, 8] {
            let handle = sys.with_merge_parallelism(shards);
            let mut kb = OnTheFlyKb::new();
            let first = handle.extend_kb(&mut kb, &stage1[..2]);
            assert_eq!((first.merged, first.skipped), (2, 0));
            let second = handle.extend_kb(&mut kb, &stage1[1..]);
            assert_eq!((second.merged, second.skipped), (1, 1));
            assert_eq!(
                kb.to_json(sys.patterns()).to_string(),
                serial_json,
                "sharded extend_kb diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn approx_bytes_tracks_document_size() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let small = sys.process_doc_stage1("Brad Pitt is an actor.");
        let big_text = format!("{FIG2} {FIG2} {FIG2} {FIG2}");
        let big = sys.process_doc_stage1(&big_text);
        assert!(small.approx_bytes() > 0);
        assert!(
            big.approx_bytes() > small.approx_bytes(),
            "bigger documents must weigh more: {} vs {}",
            big.approx_bytes(),
            small.approx_bytes()
        );
    }

    #[test]
    fn counters_shared_across_clones() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        assert_eq!(sys.counters().builds(), 0);
        let _ = sys.build_kb(&[FIG2.to_string()]);
        let clone = sys.with_parallelism(2);
        let _ = clone.build_kb_grouped(&[vec![FIG2.to_string()], vec![FIG2.to_string()]]);
        // 1 direct build + 2 groups, all visible through either handle.
        assert_eq!(sys.counters().builds(), 3);
        assert_eq!(clone.counters().builds(), 3);
        assert_eq!(sys.counters().docs(), 3);
    }

    #[test]
    fn multiple_documents_share_linked_entities() {
        let sys = system(Variant::Joint, SolverKind::Greedy);
        let result = sys.build_kb(&[
            "Brad Pitt supported the ONE Campaign.".to_string(),
            "Pitt donated $100,000 to the Daniel Pearl Foundation.".to_string(),
        ]);
        let pitt_entities: Vec<_> = result
            .kb
            .iter_entities()
            .filter(|e| e.name.contains("Pitt"))
            .collect();
        assert_eq!(
            pitt_entities.len(),
            1,
            "cross-document linking must reuse the repository entity"
        );
    }
}
