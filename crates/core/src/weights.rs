//! Edge weights (§4).
//!
//! * means edge: `w(nᵢ, eᵢⱼ) = α₁·prior(nᵢ, eᵢⱼ) + α₂·sim(cxt(nᵢ), cxt(eᵢⱼ))`
//! * relation edge: `w(nᵢ, nₜ, S) = α₃·Σ coh(eᵢⱼ, eₜₖ) + α₄·Σ ts(eᵢⱼ, eₜₖ, rᵢ,ₜ)`
//!   summed over the candidate sets of the two endpoints in subgraph `S`.
//!
//! The type-signature term can be disabled (the QKBfly-pipeline variant of
//! Tables 3–4 omits it, and the ablation bench measures its contribution).

use crate::graph::{NodeId, NodeKind, SemanticGraph};
use qkb_kb::{BackgroundStats, EntityId, EntityRepository};

/// The α-parameterized weight model.
#[derive(Clone, Debug)]
pub struct WeightModel {
    /// α₁..α₄ of §4.
    pub alphas: [f64; 4],
    /// Include the `ts` term (disabled in the pipeline variant).
    pub use_type_signatures: bool,
}

impl Default for WeightModel {
    fn default() -> Self {
        // Trained defaults (see `train`); priors and context carry most of
        // the signal, coherence and type signatures break ties.
        Self {
            alphas: [1.0, 0.6, 0.4, 0.8],
            use_type_signatures: true,
        }
    }
}

impl WeightModel {
    /// Weight of the means edge between mention `node` and candidate `e`.
    pub fn means_weight(
        &self,
        graph: &SemanticGraph,
        stats: &BackgroundStats,
        node: NodeId,
        e: EntityId,
    ) -> f64 {
        let text = match graph.node(node) {
            NodeKind::NounPhrase { text, .. } => text.as_str(),
            NodeKind::Pronoun { text, .. } => text.as_str(),
            _ => return 0.0,
        };
        let prior = stats.prior(text, e);
        let sim = graph
            .context(node)
            .map(|ctx| stats.mention_entity_sim(ctx, e))
            .unwrap_or(0.0);
        self.alphas[0] * prior + self.alphas[1] * sim
    }

    /// Pairwise candidate term of a relation edge: coherence plus (if
    /// enabled) the type signature under `pattern`.
    pub fn pair_weight(
        &self,
        stats: &BackgroundStats,
        repo: &EntityRepository,
        a: EntityId,
        b: EntityId,
        pattern: &str,
    ) -> f64 {
        let coh = stats.coherence(a, b);
        let ts = if self.use_type_signatures {
            stats.type_signature(repo.types_of(a), repo.types_of(b), pattern)
        } else {
            0.0
        };
        self.alphas[2] * coh + self.alphas[3] * ts
    }

    /// Full relation-edge weight for candidate sets `ca` × `cb`.
    pub fn relation_weight(
        &self,
        stats: &BackgroundStats,
        repo: &EntityRepository,
        ca: &[EntityId],
        cb: &[EntityId],
        pattern: &str,
    ) -> f64 {
        let mut w = 0.0;
        for &a in ca {
            for &b in cb {
                w += self.pair_weight(stats, repo, a, b, pattern);
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use qkb_kb::{Gender, StatsBuilder};
    use qkb_nlp::NerTag;

    fn fixture() -> (SemanticGraph, EntityRepository, BackgroundStats, NodeId) {
        let mut repo = EntityRepository::new();
        let city = repo.type_system().get("CITY").expect("t");
        let club = repo.type_system().get("FOOTBALL_CLUB").expect("t");
        let e_city = repo.add_entity("Liverpool", &[], Gender::Neutral, vec![city]);
        let e_club = repo.add_entity(
            "Liverpool F.C.",
            &["Liverpool"],
            Gender::Neutral,
            vec![club],
        );

        let mut b = StatsBuilder::new();
        for _ in 0..3 {
            b.add_anchor("liverpool", e_city);
        }
        b.add_anchor("liverpool", e_club);
        b.add_entity_article(e_city, ["port", "city", "england"]);
        b.add_entity_article(e_club, ["club", "league", "match"]);
        let stats = b.finalize();

        let mut g = SemanticGraph::new();
        let np = g.add_node(NodeKind::NounPhrase {
            sentence: 0,
            head: 0,
            text: "Liverpool".into(),
            ner: NerTag::Location,
            is_time: false,
            time_value: None,
            proper: true,
        });
        g.set_context(np, stats.context_of(["club", "league"]));
        let en = g.entity_node(e_club);
        g.add_edge(np, en, EdgeKind::Means);
        (g, repo, stats, np)
    }

    #[test]
    fn means_weight_combines_prior_and_context() {
        let (g, repo, stats, np) = fixture();
        let e_city = repo.candidates("Liverpool")[0];
        let e_club = repo.candidates("Liverpool")[1];
        let m = WeightModel::default();
        let w_city = m.means_weight(&g, &stats, np, e_city);
        let w_club = m.means_weight(&g, &stats, np, e_club);
        // Prior favours the city (3:1) but the sporting context should pull
        // the club up; both weights must be positive.
        assert!(w_city > 0.0 && w_club > 0.0);
        // With the club-flavoured context, the club must beat a pure-prior
        // ranking at α₂ high enough.
        let ctx_heavy = WeightModel {
            alphas: [0.1, 2.0, 0.4, 0.8],
            use_type_signatures: true,
        };
        assert!(
            ctx_heavy.means_weight(&g, &stats, np, e_club)
                > ctx_heavy.means_weight(&g, &stats, np, e_city)
        );
    }

    #[test]
    fn type_signatures_can_be_disabled() {
        let (_, repo, _, _) = fixture();
        let mut b = StatsBuilder::new();
        let fb = repo.type_system().get("FOOTBALLER").expect("t");
        let cl = repo.type_system().get("FOOTBALL_CLUB").expect("t");
        b.add_clause_signature(&[fb], &[cl], "play for");
        let stats = b.finalize();
        let e_city = repo.candidates("Liverpool")[0];
        let e_club = repo.candidates("Liverpool")[1];
        // A fake footballer entity is not needed: use the club itself as
        // "subject" to exercise the ts lookup path.
        let with = WeightModel::default();
        let without = WeightModel {
            use_type_signatures: false,
            ..Default::default()
        };
        let w1 = with.pair_weight(&stats, &repo, e_club, e_club, "play for");
        let w0 = without.pair_weight(&stats, &repo, e_club, e_club, "play for");
        assert!(w1 >= w0);
        let _ = e_city;
    }

    #[test]
    fn relation_weight_sums_pairs() {
        let (_, repo, stats, _) = fixture();
        let cands = repo.candidates("Liverpool").to_vec();
        let m = WeightModel::default();
        let w_full = m.relation_weight(&stats, &repo, &cands, &cands, "play for");
        let w_single = m.relation_weight(&stats, &repo, &cands[..1], &cands[..1], "play for");
        assert!(w_full >= w_single);
    }
}
