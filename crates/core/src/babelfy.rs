//! Babelfy-lite: the NED component of the DEFIE baseline (§7.1, Table 4).
//!
//! Babelfy \[36\] is itself a graph-based densest-subgraph disambiguator,
//! but it differs from QKBfly's algorithm in the respects the paper calls
//! out: it uses no clause-level *type signatures* (the source of the
//! Liverpool-city-vs-club errors), and it does not consider pronouns.
//! This module reproduces that profile: candidate scoring by prior +
//! context similarity, iteratively refined by pairwise coherence to the
//! other mentions' current interpretations (a light densification), with
//! pronouns ignored.

use crate::densify::MentionResolution;
use crate::graph::{NodeId, NodeKind, SemanticGraph};
use crate::weights::WeightModel;
use qkb_kb::{BackgroundStats, EntityId, EntityRepository};
use qkb_util::FxHashMap;

/// Number of coherence refinement rounds.
const ROUNDS: usize = 2;

/// Resolves noun-phrase mentions Babelfy-style (no pronouns, no type
/// signatures).
pub fn resolve_babelfy(
    graph: &SemanticGraph,
    mentions: &[NodeId],
    model: &WeightModel,
    stats: &BackgroundStats,
    repo: &EntityRepository,
) -> FxHashMap<NodeId, MentionResolution> {
    // Local model without the ts feature regardless of configuration.
    let local = WeightModel {
        use_type_signatures: false,
        ..model.clone()
    };

    let nps: Vec<NodeId> = mentions
        .iter()
        .copied()
        .filter(|&n| matches!(graph.node(n), NodeKind::NounPhrase { .. }))
        .collect();

    // Initial assignment: best candidate by means weight.
    let mut assignment: FxHashMap<NodeId, Option<EntityId>> = FxHashMap::default();
    let mut cand_cache: FxHashMap<NodeId, Vec<EntityId>> = FxHashMap::default();
    for &n in &nps {
        let cands: Vec<EntityId> = graph.means_of(n).iter().map(|&(_, e)| e).collect();
        let best = cands.iter().copied().max_by(|&a, &b| {
            local
                .means_weight(graph, stats, n, a)
                .partial_cmp(&local.means_weight(graph, stats, n, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        assignment.insert(n, best);
        cand_cache.insert(n, cands);
    }

    // Refinement: re-score each candidate with coherence to the other
    // mentions' current entities (the dense-subgraph flavour).
    for _ in 0..ROUNDS {
        let snapshot: Vec<EntityId> = assignment.values().filter_map(|e| *e).collect();
        for &n in &nps {
            let cands = &cand_cache[&n];
            if cands.len() < 2 {
                continue;
            }
            let mut best: Option<(f64, EntityId)> = None;
            for &c in cands {
                let mut score = local.means_weight(graph, stats, n, c);
                for &other in &snapshot {
                    if other != c {
                        score += 0.3 * stats.coherence(c, other);
                    }
                }
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, c));
                }
            }
            if let Some((_, c)) = best {
                assignment.insert(n, Some(c));
            }
        }
    }

    // Confidences: weight share.
    let mut out = FxHashMap::default();
    for &n in &nps {
        let cands = &cand_cache[&n];
        let chosen = assignment[&n];
        let weights: Vec<f64> = cands
            .iter()
            .map(|&c| local.means_weight(graph, stats, n, c).max(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let confidence = match chosen {
            Some(c) if total > 0.0 => {
                let idx = cands.iter().position(|&x| x == c).expect("chosen in cands");
                (weights[idx] / total).clamp(0.0, 1.0)
            }
            Some(_) => 1.0 / cands.len().max(1) as f64,
            None => 0.0,
        };
        out.insert(
            n,
            MentionResolution {
                entity: chosen,
                confidence,
                antecedent: None,
            },
        );
    }
    let _ = repo;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildConfig};
    use qkb_kb::{Gender, StatsBuilder};
    use qkb_nlp::Pipeline;
    use qkb_openie::ClausIe;

    #[test]
    fn babelfy_resolves_unambiguous_and_ignores_pronouns() {
        let mut repo = EntityRepository::new();
        let actor = repo.type_system().get("ACTOR").expect("t");
        let pitt = repo.add_entity("Brad Pitt", &["Pitt"], Gender::Male, vec![actor]);
        let mut b = StatsBuilder::new();
        b.add_anchor("Brad Pitt", pitt);
        b.add_entity_article(pitt, ["actor", "film"]);
        let stats = b.finalize();

        let pipeline = Pipeline::with_gazetteer(repo.gazetteer());
        let doc = pipeline.annotate("Brad Pitt is an actor. He supports the campaign.");
        let clausie = ClausIe::new();
        let clauses: Vec<Vec<qkb_openie::Clause>> =
            doc.sentences.iter().map(|s| clausie.detect(s)).collect();
        let built = build_graph(&doc, &clauses, &repo, &stats, BuildConfig::default());
        let res = resolve_babelfy(
            &built.graph,
            &built.mentions,
            &WeightModel::default(),
            &stats,
            &repo,
        );
        let np = built
            .graph
            .node_ids()
            .find(|&n| {
                matches!(built.graph.node(n), NodeKind::NounPhrase { text, .. } if text == "Brad Pitt")
            })
            .expect("mention");
        assert_eq!(res[&np].entity, Some(pitt));
        // pronouns absent from the output
        let pron = built
            .graph
            .node_ids()
            .find(|&n| matches!(built.graph.node(n), NodeKind::Pronoun { .. }));
        if let Some(p) = pron {
            assert!(!res.contains_key(&p));
        }
    }
}
