//! Hyper-parameter training (§4 "Hyper-Parameter Tuning").
//!
//! The paper annotates facts — pairs of entities with a relation pattern —
//! and learns α₁..α₄ by maximizing the probability of the ground-truth
//! pair, `prob = W(S) / W(G)`, with L-BFGS. Both `W(S)` (only the gold
//! candidates kept) and `W(G)` (all candidates) are *linear* in α, so the
//! log-likelihood gradient is exact and cheap. Positivity is enforced by
//! the substitution α = exp(θ).

use qkb_kb::{BackgroundStats, EntityId, EntityRepository};
use qkb_ml::{lbfgs_minimize, LbfgsConfig};

/// One annotated training fact: two mentions with candidate feature
/// tuples and the gold candidate pair.
#[derive(Clone, Debug)]
pub struct TrainingPair {
    /// Candidates of the subject mention: `(entity, prior, ctx-sim)`.
    pub cands_a: Vec<(EntityId, f64, f64)>,
    /// Candidates of the object mention.
    pub cands_b: Vec<(EntityId, f64, f64)>,
    /// The relation pattern between them.
    pub pattern: String,
    /// Gold entity pair.
    pub gold: (EntityId, EntityId),
}

impl TrainingPair {
    /// Feature vector of the sub-graph keeping only candidates `(i, j)`:
    /// `(Σ priors, Σ sims, coh, ts)`.
    fn pair_features(
        &self,
        i: usize,
        j: usize,
        stats: &BackgroundStats,
        repo: &EntityRepository,
    ) -> [f64; 4] {
        let (ea, pa, sa) = self.cands_a[i];
        let (eb, pb, sb) = self.cands_b[j];
        let coh = stats.coherence(ea, eb);
        let ts = stats.type_signature(repo.types_of(ea), repo.types_of(eb), &self.pattern);
        [pa + pb, sa + sb, coh, ts]
    }

    /// Feature vector of the full graph `G` (all candidates).
    fn full_features(&self, stats: &BackgroundStats, repo: &EntityRepository) -> [f64; 4] {
        let mut f = [0.0; 4];
        for &(_, p, s) in &self.cands_a {
            f[0] += p;
            f[1] += s;
        }
        for &(_, p, s) in &self.cands_b {
            f[0] += p;
            f[1] += s;
        }
        for &(ea, _, _) in &self.cands_a {
            for &(eb, _, _) in &self.cands_b {
                f[2] += stats.coherence(ea, eb);
                f[3] += stats.type_signature(repo.types_of(ea), repo.types_of(eb), &self.pattern);
            }
        }
        f
    }

    fn gold_indices(&self) -> Option<(usize, usize)> {
        let i = self
            .cands_a
            .iter()
            .position(|&(e, _, _)| e == self.gold.0)?;
        let j = self
            .cands_b
            .iter()
            .position(|&(e, _, _)| e == self.gold.1)?;
        Some((i, j))
    }
}

/// Fits α₁..α₄ by maximizing Σ log (W(S_gold)/W(G)) with L-BFGS.
///
/// Returns the default α when no example carries a usable gold pair.
pub fn train_alphas(
    pairs: &[TrainingPair],
    stats: &BackgroundStats,
    repo: &EntityRepository,
    init: [f64; 4],
) -> [f64; 4] {
    // Precompute features.
    let mut data: Vec<([f64; 4], [f64; 4])> = Vec::new(); // (gold, full)
    for p in pairs {
        let Some((i, j)) = p.gold_indices() else {
            continue;
        };
        // The gold sub-graph also keeps the gold means edges only.
        let gold_f = {
            let mut f = p.pair_features(i, j, stats, repo);
            // pair_features sums the gold priors/sims already; nothing to
            // add for other candidates (their means edges are removed in S).
            f[0] = p.cands_a[i].1 + p.cands_b[j].1;
            f[1] = p.cands_a[i].2 + p.cands_b[j].2;
            f
        };
        let full_f = p.full_features(stats, repo);
        // Degenerate examples (zero full weight under any α) are skipped.
        if full_f.iter().all(|&x| x == 0.0) {
            continue;
        }
        data.push((gold_f, full_f));
    }
    if data.is_empty() {
        return init;
    }

    const EPS: f64 = 1e-9;
    let objective = |theta: &[f64]| -> (f64, Vec<f64>) {
        let alpha: Vec<f64> = theta.iter().map(|t| t.exp()).collect();
        let mut nll = 0.0;
        let mut grad_alpha = [0.0f64; 4];
        for (gold, full) in &data {
            let ws: f64 = gold.iter().zip(&alpha).map(|(f, a)| f * a).sum::<f64>() + EPS;
            let wg: f64 = full.iter().zip(&alpha).map(|(f, a)| f * a).sum::<f64>() + EPS;
            nll -= (ws / wg).ln();
            for k in 0..4 {
                grad_alpha[k] -= gold[k] / ws - full[k] / wg;
            }
        }
        // Mild L2 regularization towards ln α = 0 keeps scales bounded.
        let l2 = 1e-3;
        for t in theta {
            nll += 0.5 * l2 * t * t;
        }
        // Chain rule: dθ = dα · α + regularizer.
        let grad: Vec<f64> = (0..4)
            .map(|k| grad_alpha[k] * alpha[k] + l2 * theta[k])
            .collect();
        (nll, grad)
    };

    let theta0: Vec<f64> = init.iter().map(|a| a.max(1e-3).ln()).collect();
    let (theta, _, _) = lbfgs_minimize(
        objective,
        &theta0,
        LbfgsConfig {
            max_iters: 200,
            ..Default::default()
        },
    );
    let mut out = [0.0; 4];
    for k in 0..4 {
        out[k] = theta[k].exp();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::{Gender, StatsBuilder};

    /// A world where only the type signature separates the gold pair:
    /// training must push α₄ up relative to its start.
    #[test]
    fn training_increases_discriminative_weight() {
        let mut repo = EntityRepository::new();
        let city_t = repo.type_system().get("CITY").expect("t");
        let club_t = repo.type_system().get("FOOTBALL_CLUB").expect("t");
        let fb_t = repo.type_system().get("FOOTBALLER").expect("t");
        let city = repo.add_entity("Liverpool", &[], Gender::Neutral, vec![city_t]);
        let club = repo.add_entity(
            "Liverpool F.C.",
            &["Liverpool"],
            Gender::Neutral,
            vec![club_t],
        );
        let player = repo.add_entity("Marcus Keller", &[], Gender::Male, vec![fb_t]);
        let mut b = StatsBuilder::new();
        b.add_clause_signature(&[fb_t], &[club_t], "play for");
        b.add_clause_signature(&[fb_t], &[club_t], "play for");
        let stats = b.finalize();

        // Prior prefers the WRONG candidate (the city); ts features must
        // grow to compensate.
        let pairs = vec![TrainingPair {
            cands_a: vec![(player, 0.9, 0.1)],
            cands_b: vec![(city, 0.75, 0.1), (club, 0.25, 0.1)],
            pattern: "play for".into(),
            gold: (player, club),
        }];
        let init = [1.0, 1.0, 1.0, 1.0];
        let trained = train_alphas(&pairs, &stats, &repo, init);
        assert!(
            trained[3] > trained[0],
            "α₄ (ts) should dominate α₁ (prior): {trained:?}"
        );
        for a in trained {
            assert!(a > 0.0, "alphas stay positive: {trained:?}");
        }
    }

    #[test]
    fn returns_init_without_usable_examples() {
        let repo = EntityRepository::new();
        let stats = qkb_kb::BackgroundStats::empty();
        let init = [0.5, 0.6, 0.7, 0.8];
        let out = train_alphas(&[], &stats, &repo, init);
        assert_eq!(out, init);
    }

    #[test]
    fn likelihood_improves_over_training() {
        let mut repo = EntityRepository::new();
        let a_t = repo.type_system().get("ACTOR").expect("t");
        let f_t = repo.type_system().get("FILM").expect("t");
        let a1 = repo.add_entity("A One", &[], Gender::Male, vec![a_t]);
        let a2 = repo.add_entity("A Two", &[], Gender::Male, vec![a_t]);
        let f1 = repo.add_entity("Film One", &[], Gender::Neutral, vec![f_t]);
        let mut b = StatsBuilder::new();
        b.add_clause_signature(&[a_t], &[f_t], "star in");
        b.add_entity_article(a1, ["film", "star"]);
        b.add_entity_article(f1, ["film", "star"]);
        let stats = b.finalize();
        let pairs = vec![TrainingPair {
            cands_a: vec![(a1, 0.3, 0.8), (a2, 0.7, 0.1)],
            cands_b: vec![(f1, 1.0, 0.5)],
            pattern: "star in".into(),
            gold: (a1, f1),
        }];
        let init = [1.0, 0.1, 0.1, 0.1];
        let trained = train_alphas(&pairs, &stats, &repo, init);
        // The context-similarity weight must rise: the gold candidate wins
        // on sim (0.8 vs 0.1) but loses on prior (0.3 vs 0.7).
        assert!(trained[1] > trained[0], "α₂ should outgrow α₁: {trained:?}");
    }
}
