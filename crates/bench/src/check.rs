//! Bench-regression checking: compares fresh `BENCH_*.json` reports
//! against the baselines committed at the repo root and fails on a >25%
//! regression of any headline speedup/latency metric.
//!
//! The committed baselines are produced in quick mode to match the
//! quick-mode fresh runs CI performs, and the gate compares *ratios*
//! (speedups) and relative latencies — quantities that are stable
//! across machines — rather than absolute wall-clock.

use qkb_util::json::Value;

/// Maximum tolerated relative regression of a headline metric.
pub const TOLERANCE: f64 = 0.25;

/// Whether a bigger or a smaller value is better for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Speedups, throughputs.
    HigherIsBetter,
    /// Latencies.
    LowerIsBetter,
}

/// A headline metric of one bench report, addressed by a dot-separated
/// path into the JSON object.
#[derive(Clone, Copy, Debug)]
pub struct MetricSpec {
    pub path: &'static str,
    pub direction: Direction,
}

const fn higher(path: &'static str) -> MetricSpec {
    MetricSpec {
        path,
        direction: Direction::HigherIsBetter,
    }
}

const fn lower(path: &'static str) -> MetricSpec {
    MetricSpec {
        path,
        direction: Direction::LowerIsBetter,
    }
}

const PARALLEL_METRICS: &[MetricSpec] = &[higher("speedup")];
const SERVE_METRICS: &[MetricSpec] = &[
    higher("speedup"),
    lower("served_p50_ms"),
    lower("served_p95_ms"),
];
const SESSION_METRICS: &[MetricSpec] = &[higher("speedup"), higher("session_rps")];
const INCREMENTAL_METRICS: &[MetricSpec] = &[higher("speedup"), higher("twotier_rps")];
const RESOLVE_METRICS: &[MetricSpec] = &[
    higher("greedy.speedup"),
    higher("ilp.speedup"),
    higher("component_cache.speedup"),
];
const NET_METRICS: &[MetricSpec] = &[higher("replay_speedup")];
// `warmup_speedup` is asserted (≥2x) inside the bin rather than gated
// here: its denominator is a microseconds-scale fork, too jittery for a
// 25% band, while the byte accounting is deterministic.
const FOREST_METRICS: &[MetricSpec] = &[higher("bytes_reduction")];

/// The headline metrics per bench (keyed by the report's `bench` field).
pub fn metrics_for(bench: &str) -> &'static [MetricSpec] {
    match bench {
        "build_kb_parallel" => PARALLEL_METRICS,
        "serve" => SERVE_METRICS,
        "session" => SESSION_METRICS,
        "incremental" => INCREMENTAL_METRICS,
        "resolve" => RESOLVE_METRICS,
        "net" => NET_METRICS,
        "forest" => FOREST_METRICS,
        _ => &[],
    }
}

/// One detected regression.
#[derive(Clone, Debug)]
pub struct Regression {
    pub bench: String,
    pub path: String,
    pub baseline: f64,
    pub fresh: f64,
    /// Relative change in the *bad* direction (0.30 = 30% worse).
    pub regression: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.0}% (baseline {:.3}, fresh {:.3})",
            self.bench,
            self.path,
            self.regression * 100.0,
            self.baseline,
            self.fresh
        )
    }
}

/// Resolves a dot-separated path in a JSON object to a number.
pub fn lookup(v: &Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

/// Compares a fresh report against its committed baseline. Returns the
/// regressions beyond [`TOLERANCE`]; improvements and small wobbles
/// pass. Errors on malformed reports (missing `bench` tag, mismatched
/// bench kinds, or a headline metric absent from either side) — a gate
/// that silently checks nothing must not look green.
pub fn check_pair(baseline: &Value, fresh: &Value) -> Result<Vec<Regression>, String> {
    let bench = baseline
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("baseline report has no `bench` tag")?
        .to_string();
    let fresh_bench = fresh
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("fresh report has no `bench` tag")?;
    if bench != fresh_bench {
        return Err(format!(
            "bench kind mismatch: baseline `{bench}` vs fresh `{fresh_bench}`"
        ));
    }
    let specs = metrics_for(&bench);
    if specs.is_empty() {
        return Err(format!("no headline metrics known for bench `{bench}`"));
    }
    let mut out = Vec::new();
    for spec in specs {
        let base = lookup(baseline, spec.path)
            .ok_or_else(|| format!("{bench}: baseline is missing `{}`", spec.path))?;
        let new = lookup(fresh, spec.path)
            .ok_or_else(|| format!("{bench}: fresh report is missing `{}`", spec.path))?;
        if !base.is_finite() || !new.is_finite() || base <= 0.0 {
            return Err(format!(
                "{bench}: `{}` is not a positive finite number (baseline {base}, fresh {new})",
                spec.path
            ));
        }
        let regression = match spec.direction {
            Direction::HigherIsBetter => (base - new) / base,
            Direction::LowerIsBetter => (new - base) / base,
        };
        if regression > TOLERANCE {
            out.push(Regression {
                bench: bench.clone(),
                path: spec.path.to_string(),
                baseline: base,
                fresh: new,
                regression,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bench: &str, speedup: f64) -> Value {
        Value::object()
            .with("bench", bench)
            .with("speedup", speedup)
    }

    #[test]
    fn improvement_and_small_wobble_pass() {
        let base = report("build_kb_parallel", 4.0);
        assert!(check_pair(&base, &report("build_kb_parallel", 5.0))
            .expect("ok")
            .is_empty());
        // 20% down is within the 25% tolerance.
        assert!(check_pair(&base, &report("build_kb_parallel", 3.2))
            .expect("ok")
            .is_empty());
    }

    #[test]
    fn large_speedup_drop_is_flagged() {
        let base = report("build_kb_parallel", 4.0);
        let regs = check_pair(&base, &report("build_kb_parallel", 2.4)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "speedup");
        assert!(regs[0].regression > 0.25);
    }

    #[test]
    fn latency_direction_is_inverted() {
        let mk = |speedup: f64, p50: f64, p95: f64| {
            Value::object()
                .with("bench", "serve")
                .with("speedup", speedup)
                .with("served_p50_ms", p50)
                .with("served_p95_ms", p95)
        };
        let base = mk(5.0, 10.0, 40.0);
        // Lower latency is an improvement, not a regression.
        assert!(check_pair(&base, &mk(5.0, 5.0, 20.0))
            .expect("ok")
            .is_empty());
        // 50% slower p95 trips the gate.
        let regs = check_pair(&base, &mk(5.0, 10.0, 60.0)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "served_p95_ms");
    }

    #[test]
    fn nested_paths_resolve() {
        let mk = |g: f64, i: f64, c: f64| {
            Value::object()
                .with("bench", "resolve")
                .with("greedy", Value::object().with("speedup", g))
                .with("ilp", Value::object().with("speedup", i))
                .with("component_cache", Value::object().with("speedup", c))
        };
        let base = mk(3.5, 27.0, 4.0);
        assert!(check_pair(&base, &mk(3.4, 26.0, 3.8))
            .expect("ok")
            .is_empty());
        let regs = check_pair(&base, &mk(1.5, 26.0, 3.8)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "greedy.speedup");
        // A collapsed cache speedup trips its own headline.
        let regs = check_pair(&base, &mk(3.5, 27.0, 1.0)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "component_cache.speedup");
    }

    #[test]
    fn net_replay_speedup_is_gated() {
        let mk = |s: f64| {
            Value::object()
                .with("bench", "net")
                .with("replay_speedup", s)
        };
        let base = mk(8.0);
        // Small wobble and improvement both pass.
        assert!(check_pair(&base, &mk(7.0)).expect("ok").is_empty());
        assert!(check_pair(&base, &mk(12.0)).expect("ok").is_empty());
        // A collapsed replay speedup trips the gate.
        let regs = check_pair(&base, &mk(4.0)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "replay_speedup");
    }

    #[test]
    fn forest_sharing_metrics_are_gated() {
        let mk = |bytes: f64| {
            Value::object()
                .with("bench", "forest")
                .with("bytes_reduction", bytes)
        };
        let base = mk(3.0);
        assert!(check_pair(&base, &mk(2.8)).expect("ok").is_empty());
        // A collapsed sharing ratio trips its own headline.
        let regs = check_pair(&base, &mk(1.2)).expect("ok");
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "bytes_reduction");
    }

    #[test]
    fn malformed_reports_error_instead_of_passing() {
        let base = report("build_kb_parallel", 4.0);
        // Missing metric on the fresh side.
        let fresh = Value::object().with("bench", "build_kb_parallel");
        assert!(check_pair(&base, &fresh).is_err());
        // Mismatched bench kinds.
        assert!(check_pair(&base, &report("serve", 4.0)).is_err());
        // Unknown bench.
        assert!(check_pair(&report("nope", 1.0), &report("nope", 1.0)).is_err());
        // Non-positive baseline.
        assert!(check_pair(&report("build_kb_parallel", 0.0), &base).is_err());
    }
}
