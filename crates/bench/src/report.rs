//! Table rendering with paper-vs-measured columns.

use std::time::Duration;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(cols) {
                s.push_str("| ");
                s.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    s.push(' ');
                }
                s.push(' ');
            }
            s.push('|');
            println!("{s}");
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&sep);
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats `p ± ci`.
pub fn fmt_ci(p: f64, ci: f64) -> String {
    format!("{p:.2} ± {ci:.2}")
}

/// Formats a duration in milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

/// Formats a duration in seconds.
pub fn fmt_s(d: Duration) -> String {
    format!("{:.2} s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ci(0.671, 0.061), "0.67 ± 0.06");
        assert_eq!(fmt_ms(Duration::from_micros(36_400)), "36.4 ms");
        assert_eq!(fmt_s(Duration::from_millis(880)), "0.88 s");
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(["Method", "Precision"]);
        t.row(["QKBfly", "0.67 ± 0.06"]);
        t.print();
    }
}
