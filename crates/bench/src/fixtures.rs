//! Shared experiment fixtures: the standard world, background statistics,
//! evaluation corpora and system constructors.

use qkb_corpus::background::{background_corpus, build_stats};
use qkb_corpus::docgen::GoldCorpus;
use qkb_corpus::world::WorldConfig;
use qkb_corpus::World;
use qkb_kb::{BackgroundStats, EntityRepository, PatternRepository};
use qkbfly::{Qkbfly, QkbflyConfig, SolverKind, Variant};
use std::sync::Arc;

/// The standard fixture shared by the table harnesses.
pub struct Fixture {
    /// The world model (`Arc` so serving engines can co-own it).
    pub world: Arc<World>,
    /// Background statistics computed by the real pipeline over the
    /// background corpus.
    pub stats_pages: usize,
}

/// Scale factor from the command line (`--scale N`, default 1): corpus
/// sizes multiply by it. Keeps default runs fast while allowing
/// paper-scale sweeps.
pub fn scale() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Builds the standard world.
pub fn build_fixture() -> Fixture {
    Fixture {
        world: Arc::new(World::generate(WorldConfig::standard())),
        stats_pages: 120,
    }
}

impl Fixture {
    /// Background statistics (runs the real pipeline; cached per call
    /// site).
    pub fn stats(&self) -> BackgroundStats {
        let bg = background_corpus(&self.world, self.stats_pages, 777);
        build_stats(&self.world, &bg)
    }

    /// Fresh pattern repository with the world's paraphrases.
    pub fn patterns(&self) -> PatternRepository {
        let mut p = PatternRepository::standard();
        qkb_corpus::render::extend_patterns(&mut p);
        p
    }

    /// A QKBfly system in the given configuration.
    pub fn system(&self, stats: BackgroundStats, variant: Variant, solver: SolverKind) -> Qkbfly {
        Qkbfly::with_config(
            clone_repo(&self.world),
            self.patterns(),
            stats,
            QkbflyConfig {
                variant,
                solver,
                ..Default::default()
            },
        )
    }

    /// Evaluation corpora.
    pub fn wiki(&self, docs: usize, seed: u64) -> GoldCorpus {
        qkb_corpus::docgen::wiki_corpus(&self.world, docs, seed)
    }

    /// News corpus.
    pub fn news(&self, docs: usize, seed: u64) -> GoldCorpus {
        qkb_corpus::docgen::news_corpus(&self.world, docs, seed)
    }

    /// Wikia corpus.
    pub fn wikia(&self, docs: usize, seed: u64) -> GoldCorpus {
        qkb_corpus::docgen::wikia_corpus(&self.world, docs, seed)
    }

    /// Reverb-style sentence corpus.
    pub fn reverb(&self, sentences: usize, seed: u64) -> GoldCorpus {
        qkb_corpus::docgen::reverb_corpus(&self.world, sentences, seed)
    }
}

/// Rebuilds an owned entity repository from the world's snapshot (the
/// repository is not `Clone`; regeneration is deterministic).
pub fn clone_repo(world: &World) -> EntityRepository {
    let mut repo = EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    repo
}
