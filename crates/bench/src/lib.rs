//! # qkb-bench
//!
//! The benchmark harness: one binary per table/figure of the paper
//! (`src/bin/table3.rs` … `src/bin/table9.rs`, ablations, `repro_all`),
//! plus Criterion micro-benches under `benches/`.
//!
//! This library crate holds the shared machinery: world/corpus fixtures,
//! the assessment protocol (automatic gold assessment with a simulated
//! two-assessor agreement check and Wald confidence intervals), and table
//! rendering with paper-vs-measured columns.

pub mod assess;
pub mod check;
pub mod fixtures;
pub mod report;

pub use assess::{assess_extractions, assess_linked_extractions, assess_links, AssessSummary};
pub use fixtures::{build_fixture, clone_repo, scale, Fixture};
pub use report::{fmt_ci, fmt_ms, fmt_s, Table};
