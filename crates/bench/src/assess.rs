//! Assessment protocol (§7.1): sample extractions, judge against gold,
//! report precision with 95% Wald intervals, and verify that a simulated
//! two-assessor panel lands in the paper's agreement regime (κ ≈ 0.7).

use qkb_corpus::{Assessor, GoldDoc};
use qkb_openie::Extraction;
use qkb_util::stats::{cohens_kappa, wald_interval};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Assessment result for one system/corpus pairing.
#[derive(Clone, Debug, Default)]
pub struct AssessSummary {
    /// Precision over the assessed sample.
    pub precision: f64,
    /// 95% Wald half-width.
    pub ci: f64,
    /// Total number of extractions (the paper's absolute-recall proxy).
    pub n_extractions: usize,
    /// Sample size assessed.
    pub n_assessed: usize,
    /// Simulated inter-assessor Cohen's κ.
    pub kappa: f64,
}

/// Noise rate of each simulated assessor (flipping the gold judgement);
/// 0.08 per judge yields κ ≈ 0.7, the paper's reported agreement.
const ASSESSOR_NOISE: f64 = 0.08;

/// Judges `(doc index, extraction)` records against the corpus gold.
/// `sample` extractions are assessed (the paper samples 200); when fewer
/// exist, all are judged.
pub fn assess_extractions(
    assessor: &Assessor<'_>,
    docs: &[GoldDoc],
    records: &[(usize, Extraction)],
    sample: usize,
    seed: u64,
) -> AssessSummary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(sample.max(1));
    let verdicts: Vec<bool> = idx
        .iter()
        .map(|&i| {
            let (d, ex) = &records[i];
            assessor.extraction_correct(&docs[*d], ex)
        })
        .collect();
    summarize(verdicts, records.len(), &mut rng)
}

/// Judges canonicalized `(doc index, extraction, slot links)` records:
/// surface match plus per-slot entity-link correctness (the Table 3
/// protocol for QKBfly variants).
pub fn assess_linked_extractions(
    assessor: &Assessor<'_>,
    docs: &[GoldDoc],
    records: &[(usize, Extraction, Vec<Option<qkb_kb::EntityId>>)],
    sample: usize,
    seed: u64,
) -> AssessSummary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(sample.max(1));
    let verdicts: Vec<bool> = idx
        .iter()
        .map(|&i| {
            let (d, ex, links) = &records[i];
            assessor.extraction_correct_linked(&docs[*d], ex, links)
        })
        .collect();
    summarize(verdicts, records.len(), &mut rng)
}

/// Judges `(doc, sentence, phrase, entity)` link records (Table 4).
pub fn assess_links(
    assessor: &Assessor<'_>,
    docs: &[GoldDoc],
    links: &[(usize, usize, String, qkb_kb::EntityId)],
    sample: usize,
    seed: u64,
) -> AssessSummary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..links.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(sample.max(1));
    let verdicts: Vec<bool> = idx
        .iter()
        .map(|&i| {
            let (d, s, phrase, entity) = &links[i];
            assessor.link_correct(&docs[*d], *s, phrase, *entity)
        })
        .collect();
    summarize(verdicts, links.len(), &mut rng)
}

fn summarize(verdicts: Vec<bool>, total: usize, rng: &mut SmallRng) -> AssessSummary {
    if verdicts.is_empty() {
        return AssessSummary::default();
    }
    let n = verdicts.len();
    let correct = verdicts.iter().filter(|&&v| v).count();
    let precision = correct as f64 / n as f64;

    // Two simulated noisy assessors for the κ sanity check.
    let judge = |rng: &mut SmallRng| -> Vec<bool> {
        verdicts
            .iter()
            .map(|&v| if rng.gen_bool(ASSESSOR_NOISE) { !v } else { v })
            .collect()
    };
    let a = judge(rng);
    let b = judge(rng);
    let kappa = cohens_kappa(&a, &b).unwrap_or(1.0);

    AssessSummary {
        precision,
        ci: wald_interval(precision, n),
        n_extractions: total,
        n_assessed: n,
        kappa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_corpus::world::WorldConfig;
    use qkb_corpus::World;
    use qkb_nlp::Pipeline;
    use qkb_openie::{ClausIe, Extractor};

    #[test]
    fn assessment_pipeline_on_reverb_sample() {
        let world = World::generate(WorldConfig::default());
        let corpus = qkb_corpus::docgen::reverb_corpus(&world, 40, 1);
        let assessor = Assessor::new(&world);
        let nlp = Pipeline::with_gazetteer(world.repo.gazetteer());
        let clausie = ClausIe::new();
        let mut records = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let ann = nlp.annotate(&doc.text);
            for ex in clausie.extract_doc(&ann) {
                records.push((d, ex));
            }
        }
        assert!(!records.is_empty());
        let s = assess_extractions(&assessor, &corpus.docs, &records, 200, 7);
        assert!(s.precision > 0.2, "precision {:.2} too low", s.precision);
        assert!(s.ci > 0.0 && s.ci < 0.2);
        // kappa is marginal-sensitive: at high precision the noisy judges
        // agree mostly by chance, deflating the statistic.
        assert!(s.kappa > 0.2, "kappa {:.2}", s.kappa);
        assert_eq!(s.n_extractions, records.len());
    }
}
