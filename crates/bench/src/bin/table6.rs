//! **Table 6** — greedy vs ILP joint inference on the three corpora
//! (Wikipedia-style, News, Wikia): precision, #extractions, runtime/doc.
//! The Wikia corpus is long-document, ~70% out-of-repository entities.
//!
//! Run: `cargo run -p qkb-bench --release --bin table6 [-- --scale N]`

use qkb_bench::{assess_linked_extractions, build_fixture, fmt_ci, scale, Table};
use qkb_corpus::Assessor;
use qkb_util::stats::{mean, mean_ci95};
use qkbfly::{SolverKind, Variant};
use std::time::Instant;

fn main() {
    let s = scale();
    println!("== Table 6: graph algorithms (greedy vs ILP) ==\n");
    let fx = build_fixture();
    let assessor = Assessor::new(&fx.world);

    let corpora = vec![
        ("DEFIE-Wikipedia-style", fx.wiki(30 * s, 61)),
        ("News", fx.news(12 * s, 62)),
        ("Wikia", fx.wikia(3 * s, 63)),
    ];

    for (cname, corpus) in &corpora {
        println!(
            "-- {cname}: {} docs, {} sentences --",
            corpus.docs.len(),
            corpus.n_sentences()
        );
        let mut t = Table::new(["Method", "Precision", "#Extract.", "Avg. run-time/doc"]);
        let mut greedy_p = 0.0;
        let mut ilp_p = 0.0;
        let mut greedy_t = 0.0;
        let mut ilp_t = 0.0;
        for (mname, solver) in [
            ("QKBfly", SolverKind::Greedy),
            ("QKBfly-ilp", SolverKind::Ilp),
        ] {
            let sys = fx.system(fx.stats(), Variant::Joint, solver);
            let mut records = Vec::new();
            let mut times = Vec::new();
            for (d, doc) in corpus.docs.iter().enumerate() {
                let t0 = Instant::now();
                let result = sys.build_kb(std::slice::from_ref(&doc.text));
                times.push(t0.elapsed().as_secs_f64());
                for r in result.records {
                    if r.kept {
                        records.push((d, r.extraction, r.slot_entities));
                    }
                }
            }
            let summary = assess_linked_extractions(&assessor, &corpus.docs, &records, 200, 66);
            let avg = mean(&times);
            t.row([
                mname.to_string(),
                fmt_ci(summary.precision, summary.ci),
                summary.n_extractions.to_string(),
                format!("{:.3} s ± {:.3}", avg, mean_ci95(&times)),
            ]);
            if solver == SolverKind::Greedy {
                greedy_p = summary.precision;
                greedy_t = avg;
            } else {
                ilp_p = summary.precision;
                ilp_t = avg;
            }
        }
        t.print();
        println!(
            "Shape: ILP ≥ greedy precision: {} | ILP slower: {} ({:.0}x)\n",
            ilp_p + 1e-9 >= greedy_p,
            ilp_t > greedy_t,
            ilp_t / greedy_t.max(1e-9)
        );
    }

    println!("Paper (Table 6):");
    let mut p = Table::new([
        "Dataset",
        "Method",
        "Precision",
        "#Extract.",
        "Run-time/doc",
    ]);
    p.row([
        "DEFIE-Wikipedia",
        "QKBfly",
        "0.65 ± 0.06",
        "69,630",
        "0.88 s",
    ]);
    p.row([
        "DEFIE-Wikipedia",
        "QKBfly-ilp",
        "0.66 ± 0.06",
        "69,630",
        "46.59 s",
    ]);
    p.row(["News", "QKBfly", "0.65 ± 0.06", "2,096", "1.43 s"]);
    p.row(["News", "QKBfly-ilp", "0.67 ± 0.06", "2,096", "71.18 s"]);
    p.row(["Wikia", "QKBfly", "0.54 ± 0.06", "917", "4.29 s"]);
    p.row(["Wikia", "QKBfly-ilp", "0.55 ± 0.06", "917", "542.36 s"]);
    p.print();
    println!(
        "\nPaper §7.2 also reports 13% / 24% / 71% out-of-repository entities; ours by design: \
         wiki ~{}%, news ~{}%, wikia ~70%.",
        13, 24
    );
}
