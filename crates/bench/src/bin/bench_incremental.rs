//! **Incremental-construction microbench** — overlap-heavy warm traffic
//! against the two-tier cache (per-document stage-1 LRU + fragment LRU)
//! versus the PR 2 fragment-only cache.
//!
//! Workload: every query is *distinct* and retrieves a Zipf-skewed
//! subset of a shared document pool, so the fragment cache (exact
//! retrieved-set reuse) almost never hits, while the retrieved sets
//! overlap heavily document-by-document. The fragment-only baseline
//! re-pays stage 1 (preprocess + graph + NED/CR, the dominant cost) for
//! every document of every query; the two-tier configuration assembles
//! each fragment from memoized stage-1 artifacts and re-pays only the
//! cheap canonicalize phase. The report asserts a ≥2× throughput win,
//! plus the byte-identity of assembled answers with offline cold builds.
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_incremental
//!       [-- --quick] [-- --clients N] [-- --queries N] [-- --out FILE.json]`
//!
//! The JSON report (default `BENCH_incremental.json`) rides next to
//! `BENCH_parallel.json` / `BENCH_serve.json` in the CI bench-smoke
//! artifacts.

use qkb_bench::{build_fixture, clone_repo, Table};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryEngine, QueryRequest, ServeConfig};
use qkb_util::json::Value;
use qkbfly::Qkbfly;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// An engine whose retrieval returns precomputed, Zipf-overlapping
/// document subsets: query `q<i>` maps to `sets[i]`. Build and answer
/// paths delegate to the real `QaSystem`, so fragments and answers are
/// exactly what production serving would produce for those documents.
struct OverlapEngine {
    sys: Arc<QaSystem>,
    sets: Vec<Vec<usize>>,
}

impl OverlapEngine {
    /// `n_sets` subsets of `k` distinct documents each, drawn from a
    /// `pool`-sized prefix of the corpus with Zipf(s=1) popularity —
    /// hot documents appear in most sets, cold ones in few.
    fn new(sys: Arc<QaSystem>, n_sets: usize, pool: usize, k: usize, seed: u64) -> Self {
        let pool = pool.min(sys.n_docs());
        let k = k.min(pool);
        let weights: Vec<f64> = (0..pool).map(|r| 1.0 / (r + 1) as f64).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let sets = (0..n_sets)
            .map(|_| {
                let mut set: Vec<usize> = Vec::with_capacity(k);
                while set.len() < k {
                    let mut u = rng.gen_range(0.0..weights.iter().sum::<f64>());
                    let mut pick = pool - 1;
                    for (d, w) in weights.iter().enumerate() {
                        if u < *w {
                            pick = d;
                            break;
                        }
                        u -= *w;
                    }
                    if !set.contains(&pick) {
                        set.push(pick);
                    }
                }
                set
            })
            .collect();
        Self { sys, sets }
    }

    fn query_index(text: &str) -> usize {
        text.trim_start_matches('q').parse().expect("q<i> query")
    }
}

impl QueryEngine for OverlapEngine {
    fn qkbfly(&self) -> &Qkbfly {
        self.sys.qkbfly()
    }

    fn retrieve(&self, request: &QueryRequest) -> Vec<usize> {
        self.sets[Self::query_index(&request.text)].clone()
    }

    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String> {
        self.sys.doc_texts(doc_ids)
    }

    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        self.sys.doc_fingerprint(doc_ids)
    }

    fn answer_kb(&self, request: &QueryRequest, kb: &qkb_kb::OnTheFlyKb) -> Vec<String> {
        self.sys.answer_in_kb(&request.text, kb)
    }
}

/// Issues queries `lo..hi` (each exactly once — every request is a
/// fragment-cache miss) across `clients` closed-loop threads.
fn run_distinct_queries(
    server: &QkbServer<Arc<OverlapEngine>>,
    lo: usize,
    hi: usize,
    clients: usize,
) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = server.client();
            scope.spawn(move || {
                for i in (lo..hi).skip(c).step_by(clients) {
                    let _ = client.query(QueryRequest::question(format!("q{i}")));
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let queries: usize = arg_value("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 24 } else { 64 });
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_incremental.json".to_string());

    println!("== incremental fragment construction: two-tier vs fragment-only cache ==\n");
    let fx = build_fixture();
    let pool = if quick { 12 } else { 24 };
    let per_query = if quick { 4 } else { 6 };
    // Concatenate generated articles into paper-sized documents: stage 1
    // (preprocess + graph + NED/CR) must dominate the per-query cost the
    // way it does on real news text, so the bench measures the pipeline,
    // not the miniature corpus generator's answer overhead.
    let concat = 4;
    let wiki = fx.wiki(pool * concat, 71).docs;
    let docs: Vec<qkb_corpus::GoldDoc> = wiki
        .chunks(concat)
        .map(|chunk| {
            let mut doc = chunk[0].clone();
            doc.text = chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            doc
        })
        .collect();
    let qkb = Qkbfly::new(clone_repo(&fx.world), fx.patterns(), fx.stats());
    let sys = Arc::new(QaSystem::new(fx.world.clone(), docs, qkb));
    // Warm-up queries (0..queries) and measured queries (queries..2*queries)
    // draw from the same Zipf pool, so measured sets overlap warmed ones.
    let engine = Arc::new(OverlapEngine::new(
        sys.clone(),
        2 * queries,
        pool,
        per_query,
        0x1C4E,
    ));
    println!(
        "corpus pool: {pool} docs, {} distinct queries x {per_query} docs each (Zipf overlap)",
        2 * queries
    );

    // --- determinism: an assembled fragment answers exactly like an
    // offline cold build over the same documents ---
    {
        let server = QkbServer::start(
            engine.clone(),
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        );
        for i in [0usize, 1, 2] {
            let warm = server.query(QueryRequest::question(format!("q{i}")));
            let texts = sys.doc_texts(&engine.sets[i]);
            let expected = sys.answer_in_kb(&format!("q{i}"), &sys.qkbfly().build_kb(&texts).kb);
            assert_eq!(warm.answers, expected, "assembled ≠ offline cold build");
        }
        server.shutdown();
        println!("determinism: OK (assembled == offline cold build)\n");
    }

    let configs = [
        ("fragment-only (PR 2)", 0u64),
        ("two-tier (stage-1 + fragment)", 256 << 20),
    ];
    let mut walls = Vec::new();
    let mut stats_json = Vec::new();
    let mut table = Table::new(["Config", "Req/s", "Stage-1 hit rate", "Assembled", "Cold"]);
    for (name, stage1_bytes) in configs {
        let server = QkbServer::start(
            engine.clone(),
            ServeConfig {
                shards: 2,
                cache_capacity: 2 * queries,
                stage1_cache_bytes: stage1_bytes,
                // Every query is distinct, so holding batches open buys
                // nothing — don't let the admission window cap the
                // measured speedup.
                batch_window: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        // Warm phase: distinct queries covering the pool populate the
        // stage-1 cache (two-tier) or just the useless exact-set
        // fragment cache (baseline).
        let _ = run_distinct_queries(&server, 0, queries, clients);
        // Measured phase: fresh distinct queries — all fragment misses.
        let wall = run_distinct_queries(&server, queries, 2 * queries, clients);
        let stats = server.stats();
        server.shutdown();
        let rps = queries as f64 / wall.as_secs_f64();
        table.row([
            name.to_string(),
            format!("{rps:.1}"),
            format!("{:.0}%", stats.stage1_hit_rate() * 100.0),
            format!("{}", stats.assembled_builds),
            format!("{}", stats.cold_builds),
        ]);
        walls.push(wall);
        stats_json.push(stats.to_json());
    }
    table.print();

    let speedup = walls[0].as_secs_f64() / walls[1].as_secs_f64();
    println!("\nwarm overlap-traffic speedup of the two-tier cache: {speedup:.2}x");

    let report = Value::object()
        .with("bench", "incremental")
        .with("quick", quick)
        .with("clients", clients)
        .with("distinct_queries", queries)
        .with("doc_pool", pool)
        .with("docs_per_query", per_query)
        .with("baseline_wall_s", walls[0].as_secs_f64())
        .with("twotier_wall_s", walls[1].as_secs_f64())
        .with("baseline_rps", queries as f64 / walls[0].as_secs_f64())
        .with("twotier_rps", queries as f64 / walls[1].as_secs_f64())
        .with("speedup", speedup)
        .with("determinism", "ok")
        .with("baseline_stats", stats_json.remove(0))
        .with("twotier_stats", stats_json.remove(0));
    std::fs::write(&out_path, report.to_string()).expect("write bench report");
    println!("report written to {out_path}");

    assert!(
        speedup >= 2.0,
        "two-tier cache must yield ≥2x over fragment-only on overlap-heavy warm traffic, \
         got {speedup:.2}x"
    );
}
