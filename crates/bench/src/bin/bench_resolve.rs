//! **Resolve-stage microbench** — monolithic serial NED+CR vs
//! component-decomposed parallel resolve with candidate pruning and
//! greedy warm start, with byte-identity cross-checks (the decomposed
//! KB must equal the monolithic KB at every `resolve_parallelism`).
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_resolve
//!       [-- --quick] [-- --docs N] [-- --out FILE.json]`
//!
//! Two arms:
//! * **greedy** — the production solver. Baseline: whole-document
//!   densification (`resolve_decomposition = false`). Fast: coupling
//!   components solved on 8 workers.
//! * **ilp** — the exact Appendix-A solver on a smaller doc set.
//!   Baseline: one monolithic program, no pruning, cold branch-and-bound.
//!   Fast: per-component programs with dominated candidates pruned and
//!   the greedy incumbent warm-starting the search.
//!
//! A third arm exercises the **component resolve cache**: a fresh batch
//! sharing ~70% of its coupling components with previously resolved
//! documents (the serving overlap regime) is re-resolved on the ILP
//! path against the production `qkb_serve::ComponentCache` tier —
//! cached components replay, only novel ones reach the solver — and
//! must clear the same ≥2x resolve-stage bar with a byte-identical KB,
//! cache on or off, at every `resolve_parallelism`.
//!
//! The JSON report (default `BENCH_resolve.json`) records `resolve_us`,
//! `ilp_variables` and `bnb_nodes` series per parallelism; all arms
//! assert the ≥2x speedup bar that CI enforces.

use qkb_bench::{build_fixture, Table};
use qkb_serve::ComponentCache;
use qkb_util::json::Value;
use qkbfly::{Qkbfly, ResolveCounters, SolverKind, Variant};
use std::sync::Arc;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

struct ArmRun {
    /// Stable KB rendering (byte-identity check).
    fingerprint: String,
    /// Best-of-reps summed resolve-stage wall clock (seconds).
    resolve_s: f64,
    /// Summed resolve counters across the batch.
    counters: ResolveCounters,
}

/// Builds the batch once for the fingerprint/counters, then re-runs it
/// `reps` times keeping the best summed resolve-stage wall clock.
fn run_arm(sys: &Qkbfly, docs: &[String], reps: usize) -> ArmRun {
    let first = sys.build_kb(docs);
    let fingerprint = first.kb.to_json(sys.patterns()).to_string();
    let mut counters = ResolveCounters::default();
    for d in &first.per_doc {
        counters.add(&d.resolve);
    }
    let mut resolve_s = first.timings.resolve.as_secs_f64();
    for _ in 1..reps {
        let result = sys.build_kb(docs);
        std::hint::black_box(result.kb.n_facts());
        resolve_s = resolve_s.min(result.timings.resolve.as_secs_f64());
    }
    ArmRun {
        fingerprint,
        resolve_s,
        counters,
    }
}

struct Arm {
    parallelism: usize,
    run: ArmRun,
}

/// One solver arm: monolithic baseline + decomposed runs at
/// `resolve_parallelism` 1/2/8, all byte-identical. Returns
/// `(baseline, decomposed_arms)`.
fn bench_solver(
    base_sys: &Qkbfly,
    docs: &[String],
    reps: usize,
    label: &str,
) -> (ArmRun, Vec<Arm>) {
    let monolithic = base_sys.with_config_override(|c| {
        c.resolve_decomposition = false;
    });
    let baseline = run_arm(&monolithic, docs, reps);

    let mut arms = Vec::new();
    for parallelism in [1usize, 2, 8] {
        let sys = base_sys.with_config_override(|c| {
            c.resolve_decomposition = true;
            c.resolve_parallelism = parallelism;
        });
        let run = run_arm(&sys, docs, reps);
        assert_eq!(
            run.fingerprint, baseline.fingerprint,
            "{label}: decomposed KB at resolve_parallelism={parallelism} diverged from the \
             monolithic KB — determinism bug"
        );
        arms.push(Arm { parallelism, run });
    }
    (baseline, arms)
}

fn arm_json(label: &str, docs: usize, baseline: &ArmRun, arms: &[Arm], bar: f64) -> Value {
    let fast = arms.last().expect("arms");
    let headline = baseline.resolve_s / fast.run.resolve_s;
    let series = arms.iter().map(|a| {
        Value::object()
            .with("resolve_parallelism", a.parallelism)
            .with("resolve_us", a.run.resolve_s * 1e6)
            .with("speedup", baseline.resolve_s / a.run.resolve_s)
            .with("components", a.run.counters.components)
            .with("ilp_variables", a.run.counters.ilp_variables)
            .with("bnb_nodes", a.run.counters.bnb_nodes)
            .with("pruned_candidates", a.run.counters.pruned_candidates)
    });
    println!(
        "\n{label}: {headline:.2}x over monolithic serial (bar: {bar:.1}x) — \
         {} -> {} ILP vars, {} -> {} bnb nodes",
        baseline.counters.ilp_variables,
        fast.run.counters.ilp_variables,
        baseline.counters.bnb_nodes,
        fast.run.counters.bnb_nodes,
    );
    assert!(
        headline >= bar,
        "{label}: resolve speedup {headline:.2}x is below the {bar:.1}x bar \
         (baseline {:.1} ms vs decomposed {:.1} ms)",
        baseline.resolve_s * 1e3,
        fast.run.resolve_s * 1e3,
    );
    Value::object()
        .with("docs", docs)
        .with(
            "baseline",
            Value::object()
                .with("resolve_us", baseline.resolve_s * 1e6)
                .with("components", baseline.counters.components)
                .with("ilp_variables", baseline.counters.ilp_variables)
                .with("bnb_nodes", baseline.counters.bnb_nodes),
        )
        .with("series", Value::array(series))
        .with("speedup", headline)
        .with("deterministic", true)
}

fn print_arms(title: &str, baseline: &ArmRun, arms: &[Arm]) {
    let mut table = Table::new([
        "Arm",
        "Resolve wall-clock",
        "Speedup",
        "Components",
        "ILP vars",
        "B&B nodes",
        "Pruned",
    ]);
    table.row([
        format!("{title} monolithic"),
        format!("{:.1} ms", baseline.resolve_s * 1e3),
        "1.00x".to_string(),
        baseline.counters.components.to_string(),
        baseline.counters.ilp_variables.to_string(),
        baseline.counters.bnb_nodes.to_string(),
        baseline.counters.pruned_candidates.to_string(),
    ]);
    for a in arms {
        table.row([
            format!("{title} decomposed x{}", a.parallelism),
            format!("{:.1} ms", a.run.resolve_s * 1e3),
            format!("{:.2}x", baseline.resolve_s / a.run.resolve_s),
            a.run.counters.components.to_string(),
            a.run.counters.ilp_variables.to_string(),
            a.run.counters.bnb_nodes.to_string(),
            a.run.counters.pruned_candidates.to_string(),
        ]);
    }
    table.print();
}

/// The incremental re-resolution arm: the resolve stage on *fresh*
/// documents overlapping ~70% with seen ones, cache off vs. warmed
/// component cache, at `resolve_parallelism` 1/2/8.
///
/// Honesty note: every cache-on rep gets a **fresh** tier warmed by one
/// untimed build of the seen documents, then exactly one timed build of
/// the fresh documents — so min-of-reps cannot pick a rep whose fresh
/// components were already cached by an earlier rep.
fn bench_component_cache(
    base_sys: &Qkbfly,
    seen: &[String],
    fresh: &[String],
    reps: usize,
    bar: f64,
) -> Value {
    let mut table = Table::new([
        "resolve_parallelism",
        "Cache off",
        "Cache on (warmed)",
        "Speedup",
        "Hit rate",
    ]);
    let mut series = Vec::new();
    let mut headline = f64::INFINITY;
    for parallelism in [1usize, 2, 8] {
        let sys = base_sys.with_config_override(|c| {
            c.resolve_decomposition = true;
            c.resolve_parallelism = parallelism;
        });
        let off = run_arm(&sys, fresh, reps);
        let mut on_s = f64::INFINITY;
        let mut fingerprint = String::new();
        let mut counters = ResolveCounters::default();
        for rep in 0..reps {
            let tier = Arc::new(ComponentCache::new(256 << 20, 8));
            let cached = sys.with_resolve_cache(tier.clone());
            let warm = cached.build_kb(seen); // untimed warm-up
            std::hint::black_box(warm.kb.n_facts());
            let result = cached.build_kb(fresh);
            if rep == 0 {
                fingerprint = result.kb.to_json(sys.patterns()).to_string();
                for d in &result.per_doc {
                    counters.add(&d.resolve);
                }
            }
            on_s = on_s.min(result.timings.resolve.as_secs_f64());
        }
        assert_eq!(
            fingerprint, off.fingerprint,
            "component cache changed the KB at resolve_parallelism={parallelism} — \
             collision-safety bug"
        );
        assert!(
            counters.cache_hits > 0,
            "the overlapping fresh documents must replay cached components"
        );
        let hit_rate =
            counters.cache_hits as f64 / (counters.cache_hits + counters.cache_misses) as f64;
        let speedup = off.resolve_s / on_s;
        headline = headline.min(speedup);
        table.row([
            format!("x{parallelism}"),
            format!("{:.1} ms", off.resolve_s * 1e3),
            format!("{:.1} ms", on_s * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.0}%", hit_rate * 100.0),
        ]);
        series.push(
            Value::object()
                .with("resolve_parallelism", parallelism)
                .with("resolve_off_us", off.resolve_s * 1e6)
                .with("resolve_on_us", on_s * 1e6)
                .with("speedup", speedup)
                .with("cache_hits", counters.cache_hits)
                .with("cache_misses", counters.cache_misses)
                .with("hit_rate", hit_rate),
        );
    }
    table.print();
    println!("\ncomponent_cache: {headline:.2}x worst-case over cache-off (bar: {bar:.1}x)");
    assert!(
        headline >= bar,
        "component_cache: resolve speedup {headline:.2}x is below the {bar:.1}x bar"
    );
    Value::object()
        .with("seen_docs", seen.len())
        .with("fresh_docs", fresh.len())
        .with("series", Value::array(series))
        .with("speedup", headline)
        .with("deterministic", true)
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_resolve.json".to_string());
    let n_docs: usize = arg_value("--docs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 4 } else { 12 });
    let reps = if quick { 3 } else { 5 };

    println!("== resolve stage: monolithic serial vs decomposed parallel ==");
    let fx = build_fixture();
    let stats = fx.stats();

    // --- greedy arm: long multi-page documents (many coupling
    // components per document, the serving regime). ---
    // Long documents grow the dominant coupling component, which is
    // where the lazy rescoring in the decomposed path wins most.
    let pages_per_doc = 8;
    let corpus = fx.wiki(n_docs * pages_per_doc, 4242);
    let docs: Vec<String> = corpus
        .docs
        .chunks(pages_per_doc)
        .map(|chunk| {
            chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join("\n\n")
        })
        .collect();
    // Document-level fan-out pinned to 1 so the resolve knob is the only
    // difference between arms.
    let mut greedy_sys = fx.system(stats, Variant::Joint, SolverKind::Greedy);
    greedy_sys.config_mut().parallelism = 1;
    let (greedy_base, greedy_arms) = bench_solver(&greedy_sys, &docs, reps, "greedy");
    print_arms("greedy", &greedy_base, &greedy_arms);

    // --- ILP arm: two-page *news* documents — alias-ambiguous mentions
    // (repeated surnames) make the joint-rel expansion and the
    // branch-and-bound search explode with document length (Table 6),
    // which is exactly what candidate pruning and the greedy warm start
    // attack. Two pages keeps the monolithic baseline benchable.
    let ilp_n = if quick { 3 } else { 6 };
    let ilp_corpus = fx.news(ilp_n * 2, 977);
    let ilp_docs: Vec<String> = ilp_corpus
        .docs
        .chunks(2)
        .map(|chunk| {
            chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join("\n\n")
        })
        .collect();
    let mut ilp_sys = fx.system(fx.stats(), Variant::Joint, SolverKind::Ilp);
    ilp_sys.config_mut().parallelism = 1;
    let (ilp_base, ilp_arms) = bench_solver(&ilp_sys, &ilp_docs, reps, "ilp");
    print_arms("ilp", &ilp_base, &ilp_arms);

    // --- component-cache arm: incremental re-resolution on the ILP
    // path, where the per-component solve (candidate scoring, program
    // build, branch-and-bound) is what a cache hit skips. The fresh
    // batch models the serving overlap regime: a new query's retrieved
    // set re-retrieves ~70% already-resolved documents (all their
    // components replay — same text, same canonical keys) plus
    // never-seen documents that alone reach the solver.
    println!("\n== resolve stage: component cache on overlapping fresh documents ==");
    let join_pages = |pages: &[qkb_corpus::docgen::GoldDoc]| -> Vec<String> {
        pages
            .chunks(2)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|d| d.text.as_str())
                    .collect::<Vec<_>>()
                    .join("\n\n")
            })
            .collect()
    };
    let seen_n = if quick { 7 } else { 14 };
    let seen_docs = join_pages(&fx.news(seen_n * 2, 977).docs);
    let novel_docs = join_pages(&fx.news((seen_n * 3 / 7) * 2, 31415).docs);
    let fresh_docs: Vec<String> = seen_docs.iter().cloned().chain(novel_docs).collect();
    let cc_json = bench_component_cache(&ilp_sys, &seen_docs, &fresh_docs, reps, 2.0);

    let greedy_json = arm_json("greedy", docs.len(), &greedy_base, &greedy_arms, 2.0);
    let ilp_json = arm_json("ilp", ilp_docs.len(), &ilp_base, &ilp_arms, 2.0);

    let report = Value::object()
        .with("bench", "resolve")
        .with("quick", quick)
        .with("reps", reps)
        .with("greedy", greedy_json)
        .with("ilp", ilp_json)
        .with("component_cache", cc_json);
    std::fs::write(&out_path, format!("{report}\n")).expect("write JSON report");
    println!("\nreport written to {out_path}");
}
