//! §4 hyper-parameter tuning: fit α₁..α₄ by L-BFGS on annotated facts
//! (pairs of entities with a relation pattern), as the paper does over
//! 203 facts from 5 Wikipedia pages.
//!
//! Run: `cargo run -p qkb-bench --release --bin tune_alphas`

use qkb_bench::build_fixture;
use qkb_corpus::world::GoldArg;
use qkbfly::train::{train_alphas, TrainingPair};

fn main() {
    println!("== §4: fitting alpha_1..alpha_4 with L-BFGS ==\n");
    let fx = build_fixture();
    let stats = fx.stats();
    let repo = qkb_bench::clone_repo(&fx.world);

    // Annotated facts: entity pairs with their relation patterns, with
    // candidate sets from the alias dictionary (the ambiguous ones drive
    // the gradient).
    let mut pairs = Vec::new();
    for f in fx.world.facts.iter().take(400) {
        let Some(subj_repo) = fx.world.repo_id(f.subject) else {
            continue;
        };
        let Some(GoldArg::Entity(obj)) = f.args.first() else {
            continue;
        };
        let Some(obj_repo) = fx.world.repo_id(*obj) else {
            continue;
        };
        let subj_alias = &fx.world.entity(f.subject).aliases[0];
        let obj_entity = fx.world.entity(*obj);
        let obj_alias = obj_entity.aliases.last().expect("alias");
        let cands = |alias: &str| -> Vec<(qkb_kb::EntityId, f64, f64)> {
            repo.candidates(alias)
                .iter()
                .map(|&e| (e, stats.prior(alias, e), 0.1))
                .collect()
        };
        let (ca, cb) = (cands(subj_alias), cands(obj_alias));
        if ca.is_empty() || cb.is_empty() {
            continue;
        }
        pairs.push(TrainingPair {
            cands_a: ca,
            cands_b: cb,
            pattern: f.relation.to_string(),
            gold: (subj_repo, obj_repo),
        });
    }
    println!("training on {} annotated facts (paper: 203)", pairs.len());
    let init = [1.0, 1.0, 1.0, 1.0];
    let trained = train_alphas(&pairs, &stats, &repo, init);
    println!("alpha (prior, context, coherence, type-signature):");
    println!("  init:    {init:?}");
    println!(
        "  trained: [{:.3}, {:.3}, {:.3}, {:.3}]",
        trained[0], trained[1], trained[2], trained[3]
    );
}
