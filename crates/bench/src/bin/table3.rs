//! **Table 3** — fact extraction on the DEFIE-Wikipedia-style corpus:
//! precision and number of extractions for triple and higher-arity facts,
//! plus average runtime per document, for DEFIE, QKBfly, QKBfly-pipeline
//! and QKBfly-noun.
//!
//! Run: `cargo run -p qkb-bench --release --bin table3 [-- --scale N]`

use qkb_bench::{
    assess_extractions, assess_linked_extractions, build_fixture, fmt_ci, fmt_ms, scale, Table,
};
use qkb_corpus::Assessor;
use qkb_openie::Extraction;
use qkbfly::{Qkbfly, SolverKind, Variant};
use std::time::{Duration, Instant};

struct MethodResult {
    name: &'static str,
    triples: qkb_bench::AssessSummary,
    nary: qkb_bench::AssessSummary,
    avg_runtime: Duration,
}

fn run_variant(
    name: &'static str,
    sys: &Qkbfly,
    corpus: &qkb_corpus::GoldCorpus,
    assessor: &Assessor<'_>,
) -> MethodResult {
    let mut triple_records: Vec<(usize, Extraction, Vec<Option<qkb_kb::EntityId>>)> = Vec::new();
    let mut nary_records: Vec<(usize, Extraction, Vec<Option<qkb_kb::EntityId>>)> = Vec::new();
    let mut total = Duration::ZERO;
    for (d, doc) in corpus.docs.iter().enumerate() {
        let t0 = Instant::now();
        let result = sys.build_kb(std::slice::from_ref(&doc.text));
        total += t0.elapsed();
        for r in result.records {
            if !r.kept {
                continue;
            }
            if r.extraction.is_triple() {
                triple_records.push((d, r.extraction, r.slot_entities));
            } else {
                nary_records.push((d, r.extraction, r.slot_entities));
            }
        }
    }
    MethodResult {
        name,
        triples: assess_linked_extractions(assessor, &corpus.docs, &triple_records, 200, 11),
        nary: assess_linked_extractions(assessor, &corpus.docs, &nary_records, 200, 12),
        avg_runtime: total / corpus.docs.len().max(1) as u32,
    }
}

fn run_defie(
    corpus: &qkb_corpus::GoldCorpus,
    assessor: &Assessor<'_>,
    world: &qkb_corpus::World,
    stats: qkb_kb::BackgroundStats,
) -> MethodResult {
    let repo = qkb_bench::clone_repo(world);
    let defie = qkbfly::defie::Defie::new(&repo);
    let mut triple_records = Vec::new();
    let mut total = Duration::ZERO;
    for (d, doc) in corpus.docs.iter().enumerate() {
        let t0 = Instant::now();
        let out = defie.process(&doc.text, &repo, &stats);
        total += t0.elapsed();
        for ex in out.extractions {
            triple_records.push((d, ex));
        }
    }
    MethodResult {
        name: "DEFIE",
        triples: assess_extractions(assessor, &corpus.docs, &triple_records, 200, 13),
        nary: Default::default(),
        avg_runtime: total / corpus.docs.len().max(1) as u32,
    }
}

fn main() {
    let n_docs = 60 * scale();
    println!("== Table 3: fact extraction (DEFIE-Wikipedia-style corpus, {n_docs} pages) ==\n");
    let fx = build_fixture();
    let stats = fx.stats();
    let corpus = fx.wiki(n_docs, 2024);
    println!(
        "corpus: {} documents, {} sentences",
        corpus.docs.len(),
        corpus.n_sentences()
    );
    let assessor = Assessor::new(&fx.world);

    let mut results = Vec::new();
    results.push(run_defie(&corpus, &assessor, &fx.world, fx.stats()));
    for (name, variant) in [
        ("QKBfly", Variant::Joint),
        ("QKBfly-pipeline", Variant::PipelineArch),
        ("QKBfly-noun", Variant::NounOnly),
    ] {
        let sys = fx.system(fx.stats(), variant, SolverKind::Greedy);
        results.push(run_variant(name, &sys, &corpus, &assessor));
    }
    let _ = stats;

    let mut t = Table::new([
        "Method",
        "Triple P",
        "#Triples",
        "N-ary P",
        "#N-ary",
        "Run-time/doc",
        "kappa",
    ]);
    for r in &results {
        t.row([
            r.name.to_string(),
            fmt_ci(r.triples.precision, r.triples.ci),
            r.triples.n_extractions.to_string(),
            if r.nary.n_extractions == 0 {
                "—".to_string()
            } else {
                fmt_ci(r.nary.precision, r.nary.ci)
            },
            if r.nary.n_extractions == 0 {
                "—".to_string()
            } else {
                r.nary.n_extractions.to_string()
            },
            fmt_ms(r.avg_runtime),
            format!("{:.2}", r.triples.kappa),
        ]);
    }
    t.print();

    println!("\nPaper (Table 3, for shape comparison):");
    let mut p = Table::new([
        "Method",
        "Triple P",
        "#Triples",
        "N-ary P",
        "#N-ary",
        "Run-time/doc",
    ]);
    p.row(["DEFIE", "0.62 ± 0.06", "39,684", "—", "—", "unknown"]);
    p.row([
        "QKBfly",
        "0.67 ± 0.06",
        "44,605",
        "0.63 ± 0.06",
        "25,025",
        "0.88 s",
    ]);
    p.row([
        "QKBfly-pipeline",
        "0.62 ± 0.06",
        "44,605",
        "0.58 ± 0.06",
        "25,025",
        "0.85 s",
    ]);
    p.row([
        "QKBfly-noun",
        "0.73 ± 0.06",
        "33,400",
        "0.68 ± 0.06",
        "16,626",
        "0.76 s",
    ]);
    p.print();

    // Shape checks the harness asserts (who wins, roughly by how much).
    let defie_p = results[0].triples.precision;
    let joint_p = results[1].triples.precision;
    let pipe_p = results[2].triples.precision;
    let noun_p = results[3].triples.precision;
    println!("\nShape: joint>pipeline: {}", joint_p > pipe_p);
    println!("Shape: noun-only highest precision: {}", noun_p >= joint_p);
    println!(
        "Shape: all QKBfly variants ≥ DEFIE precision: {}",
        joint_p >= defie_p
    );
    println!(
        "Shape: joint extracts more than noun-only: {}",
        results[1].triples.n_extractions > results[3].triples.n_extractions
    );
}
