//! **Prefix-forest microbench** — many concurrent sessions whose opening
//! document sets follow a Zipf distribution over a small topic pool, the
//! shape of real interactive traffic (a few hot stories, a long tail).
//!
//! With the forest *off*, every session cold-builds its opening topic
//! privately: N sessions over T topics hold up to N full copies of T
//! distinct KBs, and every opening pays stage 1 from scratch. With the
//! forest *on*, the first session per topic freezes its opening prefix
//! into the process-wide registry and every later session with the same
//! opening forks it — the layers are `Arc`-shared (resident once) and
//! the fork itself is O(1), so warm-up latency collapses to the fork
//! plus answering.
//!
//! The report asserts a ≥2× resident-bytes reduction and a ≥2× warm-up
//! speedup on forked openings, and checks answers are byte-identical
//! across the two configurations.
//!
//! Both configurations run with the fragment and stage-1 caches off, so
//! the measured gap is prefix sharing itself, not cache interplay.
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_forest
//!       [-- --quick] [-- --out FILE.json]`
//!
//! The JSON report (default `BENCH_forest.json`) rides next to the other
//! reports in the CI bench-smoke artifacts.

use qkb_bench::{build_fixture, clone_repo, Table};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryEngine, QueryRequest, ServeConfig, ServeStats, Served};
use qkb_util::json::Value;
use qkbfly::Qkbfly;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// An engine whose retrieval returns precomputed document sets:
/// `open-<t>` maps to topic `t`'s window (shared by every session on
/// that topic), `delta-<s>` to session `s`'s private follow-up
/// document. Build and answer paths delegate to the real [`QaSystem`].
struct TopicEngine {
    sys: Arc<QaSystem>,
    topics: Vec<Vec<usize>>,
    deltas: Vec<Vec<usize>>,
}

impl QueryEngine for TopicEngine {
    fn qkbfly(&self) -> &Qkbfly {
        self.sys.qkbfly()
    }

    fn retrieve(&self, request: &QueryRequest) -> Vec<usize> {
        let (kind, index) = request.text.split_once('-').expect("open-<t> | delta-<s>");
        let index: usize = index.parse().expect("numeric suffix");
        match kind {
            "open" => self.topics[index].clone(),
            "delta" => self.deltas[index].clone(),
            other => panic!("unknown bench query kind `{other}`"),
        }
    }

    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String> {
        self.sys.doc_texts(doc_ids)
    }

    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        self.sys.doc_fingerprint(doc_ids)
    }

    fn answer_kb(&self, request: &QueryRequest, kb: &qkb_kb::OnTheFlyKb) -> Vec<String> {
        self.sys.answer_in_kb(&request.text, kb)
    }
}

/// Zipf(1) topic assignment: topic `t` gets a share ∝ `1/(t+1)` of the
/// sessions, remainders going to the hottest topics, and the resulting
/// run-length blocks are interleaved by a coprime stride so same-topic
/// sessions do not arrive back-to-back.
fn zipf_assignment(sessions: usize, topics: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..topics).map(|t| 1.0 / (t + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| (sessions as f64 * w / total) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut t = 0;
    while assigned < sessions {
        counts[t % topics] += 1;
        assigned += 1;
        t += 1;
    }
    let blocks: Vec<usize> = (0..topics).flat_map(|t| vec![t; counts[t]]).collect();
    let stride = (3..sessions).find(|s| gcd(*s, sessions) == 1).unwrap_or(1);
    (0..sessions)
        .map(|s| blocks[s * stride % sessions])
        .collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

struct ConfigRun {
    open_latencies: Vec<(Served, Duration)>,
    answers: Vec<Vec<String>>,
    resident_bytes: u64,
    stats: ServeStats,
}

/// Opens all `sessions` (timed, one closed loop — latency, not
/// throughput, is the headline), then plays each session's private
/// delta turn, then snapshots resident bytes: owned session KBs plus
/// the forest's shared layers, counted once.
fn run_config(engine: &Arc<TopicEngine>, assignment: &[usize], forest: bool) -> ConfigRun {
    let server = QkbServer::start(
        engine.clone(),
        ServeConfig {
            shards: 2,
            cache_capacity: 0,
            stage1_cache_bytes: 0,
            batch_window: Duration::ZERO,
            session_forest: forest,
            ..ServeConfig::default()
        },
    );
    let mut open_latencies = Vec::with_capacity(assignment.len());
    let mut answers = Vec::with_capacity(assignment.len());
    for (s, &topic) in assignment.iter().enumerate() {
        let t0 = Instant::now();
        let response = server.query_in_session(
            &format!("session-{s}"),
            QueryRequest::question(format!("open-{topic}")),
        );
        open_latencies.push((response.served, t0.elapsed()));
        answers.push(response.answers);
    }
    for s in 0..assignment.len() {
        let response = server.query_in_session(
            &format!("session-{s}"),
            QueryRequest::question(format!("delta-{s}")),
        );
        answers.push(response.answers);
    }
    let stats: ServeStats = server.stats();
    let resident_bytes = stats.sessions.approx_bytes + stats.sessions.forest.shared_bytes;
    server.shutdown();
    ConfigRun {
        open_latencies,
        answers,
        resident_bytes,
        stats,
    }
}

fn mean_ms(latencies: &[Duration]) -> f64 {
    latencies.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / latencies.len().max(1) as f64
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_forest.json".to_string());
    let sessions = if quick { 32 } else { 48 };
    let topics = 5usize;
    let docs_per_topic = if quick { 8 } else { 10 };

    println!("== prefix forest: shared immutable KB prefixes across sessions ==\n");
    let fx = build_fixture();
    // Concatenate generated articles into paper-sized documents so
    // stage 1 dominates the opening cost, as it does on real news text.
    let concat = 2;
    let n_docs = topics * docs_per_topic + sessions;
    let wiki = fx.wiki(n_docs * concat, 151).docs;
    let docs: Vec<qkb_corpus::GoldDoc> = wiki
        .chunks(concat)
        .map(|chunk| {
            let mut doc = chunk[0].clone();
            doc.text = chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            doc
        })
        .collect();
    let qkb = Qkbfly::new(clone_repo(&fx.world), fx.patterns(), fx.stats());
    let sys = Arc::new(QaSystem::new(fx.world.clone(), docs, qkb));
    let delta_base = topics * docs_per_topic;
    let engine = Arc::new(TopicEngine {
        sys,
        topics: (0..topics)
            .map(|t| (t * docs_per_topic..(t + 1) * docs_per_topic).collect())
            .collect(),
        deltas: (0..sessions).map(|s| vec![delta_base + s]).collect(),
    });

    let assignment = zipf_assignment(sessions, topics);
    let mut shares: Vec<usize> = vec![0; topics];
    for &t in &assignment {
        shares[t] += 1;
    }
    println!(
        "{sessions} sessions over {topics} topics ({docs_per_topic} docs each), \
         Zipf shares {shares:?}, one private delta doc per session\n"
    );

    let off = run_config(&engine, &assignment, false);
    let on = run_config(&engine, &assignment, true);

    // --- determinism: forked sessions answer byte-identically to the
    // private rebuilds of the forest-off run, opening and delta turns ---
    assert_eq!(
        off.answers, on.answers,
        "forest-on answers diverged from forest-off private builds"
    );
    println!("determinism: OK (forest-on answers == forest-off private builds)\n");

    let off_opens: Vec<Duration> = off.open_latencies.iter().map(|&(_, d)| d).collect();
    let forked: Vec<Duration> = on
        .open_latencies
        .iter()
        .filter(|(served, _)| *served == Served::SessionForked)
        .map(|&(_, d)| d)
        .collect();
    assert!(
        off.open_latencies
            .iter()
            .all(|(served, _)| *served == Served::SessionCold),
        "forest-off openings must all be cold builds"
    );
    assert_eq!(
        forked.len(),
        sessions - topics,
        "with the forest on, every opening after the first per topic must fork"
    );

    let off_open_ms = mean_ms(&off_opens);
    let fork_open_ms = mean_ms(&forked);
    let warmup_speedup = off_open_ms / fork_open_ms;
    let bytes_reduction = off.resident_bytes as f64 / on.resident_bytes as f64;

    let mut table = Table::new([
        "Config",
        "Open ms (mean)",
        "Resident MiB",
        "Forked",
        "Shared MiB",
    ]);
    for (name, run, open_ms) in [
        ("forest off", &off, off_open_ms),
        ("forest on", &on, fork_open_ms),
    ] {
        table.row([
            name.to_string(),
            format!("{open_ms:.2}"),
            format!("{:.2}", run.resident_bytes as f64 / (1 << 20) as f64),
            format!("{}", run.stats.sessions.turns_forked),
            format!(
                "{:.2}",
                run.stats.sessions.forest.shared_bytes as f64 / (1 << 20) as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\nresident-bytes reduction: {bytes_reduction:.2}x, \
         forked warm-up speedup: {warmup_speedup:.2}x"
    );

    let report = Value::object()
        .with("bench", "forest")
        .with("quick", quick)
        .with("sessions", sessions)
        .with("topics", topics)
        .with("docs_per_topic", docs_per_topic)
        .with(
            "zipf_shares",
            Value::array(shares.iter().map(|&s| Value::from(s)).collect::<Vec<_>>()),
        )
        .with("off_resident_bytes", off.resident_bytes)
        .with("on_resident_bytes", on.resident_bytes)
        .with("bytes_reduction", bytes_reduction)
        .with("off_open_ms_mean", off_open_ms)
        .with("forked_open_ms_mean", fork_open_ms)
        .with("warmup_speedup", warmup_speedup)
        .with("forked", on.stats.sessions.turns_forked)
        .with("determinism", "ok")
        .with("off_stats", off.stats.to_json())
        .with("on_stats", on.stats.to_json());
    std::fs::write(&out_path, report.to_string()).expect("write bench report");
    println!("report written to {out_path}");

    assert!(
        bytes_reduction >= 2.0,
        "the prefix forest must cut resident session bytes ≥2x on Zipf-shared \
         openings, got {bytes_reduction:.2}x"
    );
    assert!(
        warmup_speedup >= 2.0,
        "forked openings must warm up ≥2x faster than private cold builds, \
         got {warmup_speedup:.2}x"
    );
}
