//! Ablation: the confidence threshold τ (the paper uses τ = 0.5 for KB
//! construction and τ = 0.9 for the high-precision IE regime of §7.3).
//!
//! Run: `cargo run -p qkb-bench --release --bin ablate_tau`

use qkb_bench::{assess_linked_extractions, build_fixture, fmt_ci, Table};
use qkb_corpus::Assessor;
use qkbfly::{Qkbfly, QkbflyConfig};

fn main() {
    println!("== Ablation: confidence threshold τ ==\n");
    let fx = build_fixture();
    let corpus = fx.wiki(40, 2025);
    let assessor = Assessor::new(&fx.world);
    let mut t = Table::new(["tau", "Precision", "#Kept"]);
    for tau in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let sys = Qkbfly::with_config(
            qkb_bench::clone_repo(&fx.world),
            fx.patterns(),
            fx.stats(),
            QkbflyConfig {
                tau,
                ..Default::default()
            },
        );
        let mut records = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let result = sys.build_kb(std::slice::from_ref(&doc.text));
            for r in result.records {
                if r.kept {
                    records.push((d, r.extraction, r.slot_entities));
                }
            }
        }
        let s = assess_linked_extractions(&assessor, &corpus.docs, &records, 200, 17);
        t.row([
            format!("{tau:.2}"),
            fmt_ci(s.precision, s.ci),
            s.n_extractions.to_string(),
        ]);
    }
    t.print();
    println!("\nExpected shape: precision non-decreasing in τ, volume decreasing.");
}
