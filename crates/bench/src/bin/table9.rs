//! **Table 9 (+ Tables 8/10)** — ad-hoc QA on the GoogleTrends-style
//! question set: macro P/R/F1 for QKBfly, QKBfly-triples,
//! Sentence-Answers and QA-Static-KB, plus sample question/answer pairs.
//!
//! Run: `cargo run -p qkb-bench --release --bin table9 [-- --scale N]`

use qkb_bench::{build_fixture, scale, Table};
use qkb_corpus::questions::{trends_test, webquestions_train};
use qkb_qa::{evaluate, QaMethod, QaSystem};
use qkbfly::Qkbfly;

fn main() {
    let s = scale();
    println!("== Table 9: ad-hoc QA on GoogleTrends-style questions ==\n");
    let fx = build_fixture();
    // The searchable corpus: Wikipedia + news (where the recent facts live).
    let mut docs = fx.wiki(60 * s, 91).docs;
    docs.extend(fx.news(30 * s, 92).docs);

    let qkb = Qkbfly::new(qkb_bench::clone_repo(&fx.world), fx.patterns(), fx.stats());
    let mut system = QaSystem::new(fx.world.clone(), docs, qkb);

    let train = webquestions_train(&fx.world, 40 * s, 93);
    println!(
        "training the answer classifier on {} questions ...",
        train.len()
    );
    system.train(&train, 94);

    let test = trends_test(&fx.world, 50 * s, 95);
    println!("evaluating {} test questions ...\n", test.len());

    let mut t = Table::new(["Method", "Precision", "Recall", "F1"]);
    let mut f1s = Vec::new();
    for (name, method) in [
        ("QKBfly", QaMethod::Qkbfly),
        ("QKBfly-triples", QaMethod::QkbflyTriples),
        ("Sentence-Answers", QaMethod::SentenceAnswers),
        ("QA-Static-KB", QaMethod::StaticKb),
    ] {
        let predictions: Vec<Vec<String>> = test.iter().map(|q| system.answer(q, method)).collect();
        let e = evaluate(&test, &predictions);
        t.row([
            name.to_string(),
            format!("{:.3}", e.macro_avg.precision),
            format!("{:.3}", e.macro_avg.recall),
            format!("{:.3}", e.macro_avg.f1),
        ]);
        f1s.push((name, e.macro_avg.f1));
    }
    t.print();

    println!("\nPaper (Table 9):");
    let mut p = Table::new(["Method", "Precision", "Recall", "F1"]);
    p.row(["QKBfly", "0.330", "0.383", "0.341"]);
    p.row(["QKBfly-triples", "0.294", "0.363", "0.307"]);
    p.row(["Sentence-Answers", "0.173", "0.199", "0.179"]);
    p.row(["QA-Freebase", "0.095", "0.100", "0.096"]);
    p.print();

    let f1 = |n: &str| f1s.iter().find(|(m, _)| *m == n).expect("row").1;
    println!(
        "\nShape: QKBfly > triples-only: {} | triples > sentence baseline: {} | static KB worst: {}",
        f1("QKBfly") >= f1("QKBfly-triples"),
        f1("QKBfly-triples") > f1("Sentence-Answers"),
        f1s.iter().all(|(_, v)| *v >= f1("QA-Static-KB")),
    );

    // Tables 8/10-style samples.
    println!("\nSample questions (Tables 8/10 style):");
    for q in test.iter().take(6) {
        let ans = system.answer(q, QaMethod::Qkbfly);
        let stat = system.answer(q, QaMethod::StaticKb);
        println!("  Q: {}", q.text);
        println!("     gold: {:?}", q.gold.first().map(|g| &g[0]));
        println!("     QKBfly: {ans:?}   QA-Static-KB: {stat:?}");
    }
}
