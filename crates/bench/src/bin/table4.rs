//! **Table 4** — entity linking (NED) precision: DEFIE/Babelfy vs QKBfly
//! vs QKBfly-pipeline.
//!
//! Run: `cargo run -p qkb-bench --release --bin table4 [-- --scale N]`

use qkb_bench::{assess_links, build_fixture, fmt_ci, scale, Table};
use qkb_corpus::Assessor;
use qkbfly::{SolverKind, Variant};

fn main() {
    let n_docs = 60 * scale();
    println!("== Table 4: linking entities to the repository ({n_docs} pages) ==\n");
    let fx = build_fixture();
    let corpus = fx.wiki(n_docs, 2024);
    let assessor = Assessor::new(&fx.world);

    let mut rows = Vec::new();

    // DEFIE / Babelfy-lite.
    {
        let repo = qkb_bench::clone_repo(&fx.world);
        let stats = fx.stats();
        let defie = qkbfly::defie::Defie::new(&repo);
        let mut links = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let out = defie.process(&doc.text, &repo, &stats);
            for (s, phrase, e, _) in out.links {
                links.push((d, s, phrase, e));
            }
        }
        rows.push((
            "DEFIE (Babelfy)",
            assess_links(&assessor, &corpus.docs, &links, 200, 41),
        ));
    }

    for (name, variant) in [
        ("QKBfly", Variant::Joint),
        ("QKBfly-pipeline", Variant::PipelineArch),
    ] {
        let sys = fx.system(fx.stats(), variant, SolverKind::Greedy);
        let mut links = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let result = sys.build_kb(std::slice::from_ref(&doc.text));
            for l in result.links {
                links.push((d, l.sentence, l.phrase, l.entity));
            }
        }
        rows.push((name, assess_links(&assessor, &corpus.docs, &links, 200, 42)));
    }

    let mut t = Table::new(["Method", "Precision", "#Links", "kappa"]);
    for (name, s) in &rows {
        t.row([
            name.to_string(),
            fmt_ci(s.precision, s.ci),
            s.n_extractions.to_string(),
            format!("{:.2}", s.kappa),
        ]);
    }
    t.print();

    println!("\nPaper (Table 4):");
    let mut p = Table::new(["Method", "Precision", "#Extractions"]);
    p.row(["DEFIE (Babelfy)", "0.82 ± 0.05", "39,684"]);
    p.row(["QKBfly", "0.86 ± 0.04", "50,026"]);
    p.row(["QKBfly-pipeline", "0.80 ± 0.05", "50,026"]);
    p.print();

    let (babelfy, joint, pipeline) = (
        rows[0].1.precision,
        rows[1].1.precision,
        rows[2].1.precision,
    );
    println!("\nShape: joint ≥ Babelfy: {}", joint >= babelfy);
    println!(
        "Shape: joint > pipeline (type signatures): {}",
        joint > pipeline
    );
}
