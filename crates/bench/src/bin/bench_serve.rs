//! **Serving-throughput microbench** — closed-loop clients firing a
//! Zipf-skewed query mix at `qkb-serve`, comparing the full configuration
//! (fragment cache + coalescing + admission batching) against a
//! no-cache/no-coalescing baseline, plus a determinism cross-check
//! (served answers must be byte-identical to offline cold builds at any
//! shard count).
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_serve
//!       [-- --quick] [-- --clients N] [-- --distinct N] [-- --reps N]
//!       [-- --out FILE.json] [-- --trace FILE.json]`
//!
//! `--trace FILE` runs an extra short traced pass *after* the measured
//! workloads (so the recorder never touches the timed arms) and writes
//! its Chrome-trace export there — CI uploads it with the reports.
//!
//! The JSON report (default `BENCH_serve.json`) rides next to
//! `BENCH_parallel.json` in the CI bench-smoke artifacts.

use qkb_bench::{build_fixture, clone_repo, Table};
use qkb_corpus::questions::trends_test;
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig, Served};
use qkb_util::json::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// A Zipf(s = 1) sampler over ranks `0..n`: rank r has weight 1/(r+1).
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / (r + 1) as f64;
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty mix");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// The offline reference path a served answer must reproduce.
fn cold_answers(sys: &QaSystem, question: &str) -> Vec<String> {
    let doc_ids = sys.retrieve_docs(question);
    let texts = sys.doc_texts(&doc_ids);
    let kb = sys.qkbfly().build_kb(&texts).kb;
    sys.answer_in_kb(question, &kb)
}

/// Runs `clients` closed-loop client threads, each issuing `reps`
/// Zipf-sampled queries; returns (wall-clock, per-request latencies).
fn run_workload(
    server: &QkbServer<Arc<QaSystem>>,
    questions: &[String],
    clients: usize,
    reps: usize,
) -> (Duration, Vec<Duration>) {
    let zipf = Zipf::new(questions.len());
    let t0 = Instant::now();
    let latencies = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for c in 0..clients {
            let client = server.client();
            let zipf = &zipf;
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC11E57 + c as u64);
                let mut lat = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let q = &questions[zipf.sample(&mut rng)];
                    let response = client.query(QueryRequest::question(q));
                    lat.push(response.latency);
                }
                lat
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    (t0.elapsed(), latencies)
}

fn percentile_ms(latencies: &mut [Duration], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
    latencies[idx].as_secs_f64() * 1000.0
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let distinct: usize = arg_value("--distinct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 12 } else { 32 });
    let reps: usize = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 6 } else { 16 });
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    println!("== qkb-serve throughput: cache+coalescing vs baseline ==\n");
    let fx = build_fixture();
    let mut docs = fx.wiki(if quick { 20 } else { 40 }, 91).docs;
    docs.extend(fx.news(if quick { 10 } else { 20 }, 92).docs);
    let qkb = qkbfly::Qkbfly::new(clone_repo(&fx.world), fx.patterns(), fx.stats());
    let mut sys = QaSystem::new(fx.world.clone(), docs, qkb);
    sys.top_k = if quick { 4 } else { 6 };
    let sys = Arc::new(sys);
    let questions: Vec<String> = trends_test(&fx.world, distinct, 95)
        .into_iter()
        .map(|q| q.text)
        .collect();
    println!(
        "corpus: {} docs, {} distinct questions, top-{} retrieval",
        sys.n_docs(),
        questions.len(),
        sys.top_k
    );

    // --- determinism: served == offline cold build, at 1 and 4 shards ---
    for shards in [1usize, 4] {
        let server = QkbServer::start(
            sys.clone(),
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        );
        for q in questions.iter().take(3) {
            let expected = cold_answers(&sys, q);
            let cold = server.query(QueryRequest::question(q));
            let warm = server.query(QueryRequest::question(q));
            assert_eq!(
                cold.answers, expected,
                "served ≠ offline at {shards} shards"
            );
            assert_eq!(
                warm.answers, expected,
                "cache hit ≠ cold at {shards} shards"
            );
            assert_eq!(warm.served, Served::CacheHit);
        }
        server.shutdown();
    }
    println!("determinism: OK (served == offline cold build at 1 and 4 shards)\n");

    let shards = 4;
    // --- baseline: no cache, no coalescing, no batching ---
    let baseline_server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards,
            cache_capacity: 0,
            coalesce: false,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let (base_wall, mut base_lat) = run_workload(&baseline_server, &questions, clients, reps);
    let baseline_stats = baseline_server.stats();
    baseline_server.shutdown();

    // --- full serving configuration, warmed ---
    let served_server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards,
            cache_capacity: 64,
            coalesce: true,
            batch_max: 8,
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    for q in &questions {
        let _ = served_server.query(QueryRequest::question(q)); // warm the cache
    }
    let (serve_wall, mut serve_lat) = run_workload(&served_server, &questions, clients, reps);
    let served_stats = served_server.stats();
    served_server.shutdown();

    let n_requests = (clients * reps) as f64;
    let base_rps = n_requests / base_wall.as_secs_f64();
    let serve_rps = n_requests / serve_wall.as_secs_f64();
    let speedup = serve_rps / base_rps;

    let mut table = Table::new(["Config", "Req/s", "p50", "p95", "Cache hit rate"]);
    table.row([
        "baseline (no cache/coalesce)".to_string(),
        format!("{base_rps:.1}"),
        format!("{:.1} ms", percentile_ms(&mut base_lat, 0.50)),
        format!("{:.1} ms", percentile_ms(&mut base_lat, 0.95)),
        "—".to_string(),
    ]);
    table.row([
        "cache + coalesce + batch".to_string(),
        format!("{serve_rps:.1}"),
        format!("{:.1} ms", percentile_ms(&mut serve_lat, 0.50)),
        format!("{:.1} ms", percentile_ms(&mut serve_lat, 0.95)),
        format!("{:.0}%", served_stats.cache_hit_rate() * 100.0),
    ]);
    table.print();
    println!("\nwarm-cache speedup over baseline at {clients} closed-loop clients: {speedup:.2}x");

    let report = Value::object()
        .with("bench", "serve")
        .with("quick", quick)
        .with("clients", clients)
        .with("reps_per_client", reps)
        .with("distinct_questions", distinct)
        .with("shards", shards)
        .with("baseline_rps", base_rps)
        .with("served_rps", serve_rps)
        .with("speedup", speedup)
        .with("baseline_p50_ms", percentile_ms(&mut base_lat, 0.50))
        .with("baseline_p95_ms", percentile_ms(&mut base_lat, 0.95))
        .with("served_p50_ms", percentile_ms(&mut serve_lat, 0.50))
        .with("served_p95_ms", percentile_ms(&mut serve_lat, 0.95))
        .with("determinism", "ok")
        .with("baseline_stats", baseline_stats.to_json())
        .with("served_stats", served_stats.to_json());
    std::fs::write(&out_path, report.to_string()).expect("write bench report");
    println!("report written to {out_path}");

    // Optional traced pass, after (and isolated from) the timed arms:
    // a fresh server with a flight recorder serves each question once
    // cold and once warm, and the span trees land in --trace FILE.
    if let Some(trace_path) = arg_value("--trace") {
        let recorder = qkb_obs::Recorder::flight();
        let traced_server = QkbServer::start(
            sys.clone(),
            ServeConfig {
                shards,
                cache_capacity: 64,
                recorder: recorder.clone(),
                ..ServeConfig::default()
            },
        );
        for q in questions.iter().take(4).chain(questions.first()) {
            let _ = traced_server.query(QueryRequest::question(q));
        }
        traced_server.shutdown();
        let records = recorder.records();
        if let Some(dir) = std::path::Path::new(&trace_path).parent() {
            std::fs::create_dir_all(dir).expect("trace output dir");
        }
        std::fs::write(&trace_path, qkb_obs::chrome_trace(&records).to_string())
            .expect("write trace");
        println!(
            "traced pass: {} spans ({} dropped) -> {trace_path}",
            records.len(),
            recorder.dropped()
        );
    }

    assert!(
        speedup >= 2.0,
        "fragment cache + coalescing must yield ≥2x over the baseline, got {speedup:.2}x"
    );
}
