//! **Bench-regression gate** — diffs fresh `BENCH_*.json` reports
//! against the committed baselines and exits non-zero when any headline
//! speedup/latency metric regressed by more than 25%.
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_check --
//!       --baseline-dir . --fresh-dir fresh-bench`
//!
//! Every `BENCH_*.json` in the baseline directory must have a fresh
//! counterpart (same file name) in the fresh directory — a bench that
//! silently stopped producing its report must not look green.

use qkb_bench::check::check_pair;
use qkb_util::json::Value;
use std::path::{Path, PathBuf};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Value::parse(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() {
    let baseline_dir = PathBuf::from(arg_value("--baseline-dir").unwrap_or_else(|| ".".into()));
    let fresh_dir = PathBuf::from(arg_value("--fresh-dir").unwrap_or_else(|| "fresh-bench".into()));

    let mut baselines: Vec<PathBuf> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", baseline_dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines found in {}",
        baseline_dir.display()
    );

    let mut regressions = Vec::new();
    let mut checked = 0usize;
    for base_path in &baselines {
        let name = base_path.file_name().expect("file name");
        let fresh_path = fresh_dir.join(name);
        assert!(
            fresh_path.exists(),
            "missing fresh report {} (did the bench stop writing its report?)",
            fresh_path.display()
        );
        let baseline = load(base_path);
        let fresh = load(&fresh_path);
        let regs = check_pair(&baseline, &fresh)
            .unwrap_or_else(|e| panic!("{}: {e}", name.to_string_lossy()));
        let bench = baseline.get("bench").and_then(Value::as_str).expect("tag");
        if regs.is_empty() {
            println!("ok: {bench} ({})", name.to_string_lossy());
        }
        for r in regs {
            println!("REGRESSION: {r}");
            regressions.push(r);
        }
        checked += 1;
    }
    println!(
        "\nchecked {checked} reports, {} regressions",
        regressions.len()
    );
    if !regressions.is_empty() {
        std::process::exit(1);
    }
}
