//! Diagnostic: list wrong extractions of the joint variant with gold.

use qkb_bench::{build_fixture, scale};
use qkb_corpus::Assessor;
use qkbfly::{SolverKind, Variant};

fn main() {
    let _ = scale();
    let fx = build_fixture();
    let corpus = match std::env::args().nth(1).as_deref() {
        Some("wikia") => fx.wikia(2, 63),
        Some("news") => fx.news(8, 62),
        _ => fx.wiki(60, 2024),
    };
    let assessor = Assessor::new(&fx.world);
    let sys = fx.system(fx.stats(), Variant::Joint, SolverKind::Greedy);
    let mut wrong = 0;
    let mut total = 0;
    let mut dropped = 0;
    let mut shown = 0;
    for doc in corpus.docs.iter() {
        let result = sys.build_kb(std::slice::from_ref(&doc.text));
        for r in &result.records {
            if !r.extraction.is_triple() {
                continue;
            }
            if !r.kept {
                dropped += 1;
                if shown < 8 {
                    println!(
                        "DROPPED conf={:.2} s{} {}\n  sent: {}",
                        r.extraction.confidence,
                        r.extraction.sentence,
                        r.extraction.render(),
                        doc.sentences
                            .get(r.extraction.sentence)
                            .map(String::as_str)
                            .unwrap_or("?")
                    );
                    shown += 1;
                }
                continue;
            }
            total += 1;
            if !assessor.extraction_correct(doc, &r.extraction) {
                wrong += 1;
                if wrong <= 25 {
                    println!(
                        "WRONG conf={:.2} s{} {}\n  sent: {}",
                        r.extraction.confidence,
                        r.extraction.sentence,
                        r.extraction.render(),
                        doc.sentences
                            .get(r.extraction.sentence)
                            .map(String::as_str)
                            .unwrap_or("?")
                    );
                    for inst in doc
                        .instances
                        .iter()
                        .filter(|i| i.sentence == r.extraction.sentence)
                    {
                        println!(
                            "  gold: subj='{}' rel='{}' pattern(s)={:?} args={:?} neg={}",
                            inst.subject_surface,
                            inst.relation,
                            inst.args
                                .iter()
                                .map(|a| a.pattern.as_str())
                                .collect::<Vec<_>>(),
                            inst.args
                                .iter()
                                .map(|a| a.surface.as_str())
                                .collect::<Vec<_>>(),
                            inst.negated
                        );
                    }
                }
            }
        }
    }
    println!(
        "\nkept={total} wrong={wrong} dropped={dropped} precision={:.3}",
        1.0 - wrong as f64 / total as f64
    );
}
