//! **Batch-throughput microbench** — serial vs parallel `build_kb` over a
//! multi-document batch, with a determinism cross-check (the parallel KB
//! must be byte-identical to the serial one).
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_parallel
//!       [-- --quick] [-- --docs N] [-- --threads N] [-- --out FILE.json]`
//!
//! `--quick` shrinks the batch and repetition count for the CI
//! bench-smoke job. The JSON report (default `BENCH_parallel.json`)
//! feeds the benchmark trajectory tracked across PRs.

use qkb_bench::{build_fixture, Table};
use qkb_util::json::Value;
use qkbfly::{Qkbfly, SolverKind, Variant};
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Stable rendering of the canonicalized KB for the determinism check.
fn kb_fingerprint(sys: &Qkbfly, docs: &[String]) -> (String, usize) {
    let result = sys.build_kb(docs);
    (
        result.kb.to_json(sys.patterns()).to_string(),
        result.kb.n_facts(),
    )
}

fn timed_reps(sys: &Qkbfly, docs: &[String], reps: usize) -> f64 {
    // One warmup build, then the best-of-reps wall clock (robust against
    // scheduler noise on shared CI runners).
    let _ = sys.build_kb(docs);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let result = sys.build_kb(docs);
        std::hint::black_box(result.kb.n_facts());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let n_docs: usize = arg_value("--docs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 64 });
    let threads: usize = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let reps = if quick { 2 } else { 5 };

    println!("== build_kb batch throughput: serial vs parallel ==\n");
    let fx = build_fixture();
    let stats = fx.stats();
    // Fold several generated pages into each batch document so per-document
    // cost is in news-article territory (the regime §7.1 reports on);
    // thread-spawn overhead must be negligible against real documents.
    let pages_per_doc = if quick { 4 } else { 8 };
    let corpus = fx.wiki(n_docs * pages_per_doc, 4242);
    let docs: Vec<String> = corpus
        .docs
        .chunks(pages_per_doc)
        .map(|chunk| {
            chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join("\n\n")
        })
        .collect();

    // One system; clones share the repositories, so flipping `parallelism`
    // on a cheap handle compares identical state.
    let mut serial = fx.system(stats, Variant::Joint, SolverKind::Greedy);
    serial.config_mut().parallelism = 1;
    let mut parallel = serial.clone();
    parallel.config_mut().parallelism = threads;
    let workers = qkb_util::effective_parallelism(threads);

    // Determinism cross-check before timing anything.
    let (serial_fp, n_facts) = kb_fingerprint(&serial, &docs);
    let (parallel_fp, _) = kb_fingerprint(&parallel, &docs);
    assert_eq!(
        serial_fp, parallel_fp,
        "parallel KB diverged from the serial KB — determinism bug"
    );
    println!(
        "determinism: OK ({} docs -> {} facts, identical KB at {} workers)\n",
        docs.len(),
        n_facts,
        workers
    );

    let serial_s = timed_reps(&serial, &docs, reps);
    let parallel_s = timed_reps(&parallel, &docs, reps);
    let speedup = serial_s / parallel_s;

    let mut table = Table::new(["Mode", "Workers", "Batch wall-clock", "Docs/s"]);
    table.row([
        "serial".to_string(),
        "1".to_string(),
        format!("{:.3} s", serial_s),
        format!("{:.1}", docs.len() as f64 / serial_s),
    ]);
    table.row([
        "parallel".to_string(),
        workers.to_string(),
        format!("{:.3} s", parallel_s),
        format!("{:.1}", docs.len() as f64 / parallel_s),
    ]);
    table.print();
    println!("\nspeedup: {speedup:.2}x (quick={quick})");

    let report = Value::object()
        .with("bench", "build_kb_parallel")
        .with("quick", quick)
        .with("docs", docs.len())
        .with("workers", workers)
        .with("reps", reps)
        .with("n_facts", n_facts)
        .with("serial_s", serial_s)
        .with("parallel_s", parallel_s)
        .with("speedup", speedup)
        .with("docs_per_s_serial", docs.len() as f64 / serial_s)
        .with("docs_per_s_parallel", docs.len() as f64 / parallel_s)
        .with("deterministic", true);
    std::fs::write(&out_path, format!("{report}\n")).expect("write JSON report");
    println!("report written to {out_path}");
}
