//! **Table 5** — the Open IE component on the Reverb-500-style corpus:
//! precision, number of extractions and average per-sentence runtime for
//! ClausIE (chart parser), QKBfly (greedy parser), ReVerb, Ollie and
//! Open IE 4.2.
//!
//! Run: `cargo run -p qkb-bench --release --bin table5 [-- --scale N]`

use qkb_bench::{assess_extractions, build_fixture, fmt_ci, scale, Table};
use qkb_corpus::Assessor;
use qkb_openie::{ClausIe, Extractor, Ollie, OpenIe4, Reverb};
use qkb_parse::ParserBackend;
use qkb_util::stats::{mean, mean_ci95};
use std::time::Instant;

fn main() {
    let n_sentences = 500 * scale();
    println!("== Table 5: Open IE component (Reverb-style, {n_sentences} sentences) ==\n");
    let fx = build_fixture();
    let corpus = fx.reverb(n_sentences, 555);
    let assessor = Assessor::new(&fx.world);
    let repo = qkb_bench::clone_repo(&fx.world);
    let nlp = qkb_nlp::Pipeline::with_gazetteer(repo.gazetteer());

    let systems: Vec<(&str, Box<dyn Extractor>)> = vec![
        (
            "ClausIE",
            Box::new(ClausIe::with_backend(ParserBackend::Chart)),
        ),
        ("QKBfly", Box::new(ClausIe::new())),
        ("Reverb", Box::new(Reverb::new())),
        ("Ollie", Box::new(Ollie::new())),
        ("Open IE 4.2", Box::new(OpenIe4::new())),
    ];

    let mut t = Table::new(["Method", "Precision", "#Extract.", "Avg. ms/sentence"]);
    let mut measured: Vec<(String, f64, usize, f64)> = Vec::new();
    for (name, system) in &systems {
        let mut records = Vec::new();
        let mut times = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let t0 = Instant::now();
            // Per the paper, runtime covers the full per-sentence stack
            // (pre-processing + parsing + extraction).
            let ann = nlp.annotate(&doc.text);
            let mut ex = Vec::new();
            for s in &ann.sentences {
                ex.extend(system.extract(s));
            }
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            for mut e in ex {
                e.sentence = 0; // single-sentence documents
                records.push((d, e));
            }
        }
        let s = assess_extractions(&assessor, &corpus.docs, &records, 200, 51);
        t.row([
            name.to_string(),
            fmt_ci(s.precision, s.ci),
            s.n_extractions.to_string(),
            format!("{:.2} ± {:.2}", mean(&times), mean_ci95(&times)),
        ]);
        measured.push((name.to_string(), s.precision, s.n_extractions, mean(&times)));
    }
    t.print();

    println!("\nPaper (Table 5):");
    let mut p = Table::new(["Method", "Precision", "#Extract.", "Avg. ms/sentence"]);
    p.row(["ClausIE", "0.62", "1,707", "374 ± 127"]);
    p.row(["QKBfly", "0.57", "1,308", "36 ± 11"]);
    p.row(["Reverb", "0.53", "727", "8 ± 2"]);
    p.row(["Ollie", "0.44", "1,242", "24 ± 9"]);
    p.row(["Open IE 4.2", "0.56", "1,153", "59 ± 14"]);
    p.print();

    let by = |n: &str| measured.iter().find(|(m, _, _, _)| m == n).expect("row");
    println!(
        "\nShape: ClausIE slower than QKBfly: {}",
        by("ClausIE").3 > by("QKBfly").3
    );
    println!("Shape: Reverb fastest: {}", {
        let r = by("Reverb").3;
        measured.iter().all(|(_, _, _, t)| *t >= r)
    });
    println!(
        "Shape: Reverb fewest extractions: {}",
        measured.iter().all(|(_, _, n, _)| *n >= by("Reverb").2)
    );
    println!(
        "Shape: Ollie lowest precision: {}",
        measured.iter().all(|(_, pr, _, _)| *pr >= by("Ollie").1)
    );
}
