//! **Network-tier microbench** — the durable serving tier (`qkb_net`)
//! measured over real loopback TCP in three arms:
//!
//! 1. **Throughput/latency**: closed-loop clients issue stateless queries
//!    over the framed wire protocol; reports requests/s and client-side
//!    p50/p95 (headline).
//! 2. **Overload**: a burst of pipelined cold queries against a tiny
//!    global admission watermark; asserts the queue-depth invariant
//!    (`queue_depth_peak <= watermark`) and that overload is answered
//!    with explicit BUSY frames, not latency collapse (shed-rate
//!    headline).
//! 3. **Crash recovery**: a multi-session run with the write-ahead
//!    journal attached, then a restart that rebuilds every session by
//!    replaying the journal. `replay_speedup` = wall-clock of the live
//!    networked run / wall-clock of the journal replay — the factor the
//!    journal saves over making clients re-send their query logs after a
//!    crash. Both sides pay the same KB-construction work on the same
//!    machine, so the ratio is stable across hosts; it is the headline
//!    gated by `bench_check` (`BENCH_net.json`).
//!
//! The journal runs with `fsync` off here: the bench crashes nothing,
//! and fsync cost is a property of the filesystem, not of the code under
//! test — it would make the gated ratio machine-dependent.
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_net
//!       [-- --quick] [-- --clients N] [-- --out FILE.json]`

use qkb_bench::{build_fixture, clone_repo, Table};
use qkb_net::{JournalConfig, NetClient, NetConfig, NetRequest, NetResponse, QkbNetServer};
use qkb_qa::QaSystem;
use qkb_serve::{QueryRequest, ServeConfig};
use qkb_util::json::Value;
use qkbfly::Qkbfly;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qkb_bench_net_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_net.json".to_string());

    println!("== qkb_net: framed wire protocol, backpressure, journal replay ==\n");
    let fx = build_fixture();
    let mut docs = fx.wiki(12, 3).docs;
    docs.extend(fx.news(8, 4).docs);
    let qkb = Qkbfly::new(clone_repo(&fx.world), fx.patterns(), fx.stats());
    let mut sys = QaSystem::new(fx.world.clone(), docs, qkb);
    sys.top_k = 4;
    let sys = Arc::new(sys);
    let pool: Vec<String> = qkb_corpus::questions::trends_test(&fx.world, 8, 13)
        .into_iter()
        .map(|q| q.text)
        .collect();

    // --- arm 1: loopback throughput + client-observed latency ---
    let per_client = if quick { 12 } else { 30 };
    let serve = || ServeConfig {
        shards: 2,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = QkbNetServer::start(
        sys.clone(),
        NetConfig {
            serve: serve(),
            ..NetConfig::default()
        },
    )
    .expect("start net server");
    let addr = server.local_addr();
    // Warm the caches once so the measured phase is steady-state serving,
    // the regime a long-lived network tier actually runs in.
    {
        let mut warm = NetClient::connect(addr).expect("connect");
        for q in &pool {
            warm.query(QueryRequest::question(q)).expect("warm query");
        }
    }
    server.reset_stats();
    let t0 = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    let mut ms = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let q = &pool[(c + i) % pool.len()];
                        let t = Instant::now();
                        client.query(QueryRequest::question(q)).expect("query");
                        ms.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    ms
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    let total_requests = clients * per_client;
    let rps = total_requests as f64 / wall.as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50_ms, p95_ms) = (
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 95.0),
    );
    let throughput_stats = server.stats();
    drop(server);
    let mut table = Table::new(["Arm", "Requests", "req/s", "p50 ms", "p95 ms"]);
    table.row([
        "loopback throughput".to_string(),
        format!("{total_requests}"),
        format!("{rps:.1}"),
        format!("{p50_ms:.2}"),
        format!("{p95_ms:.2}"),
    ]);
    table.print();
    assert_eq!(throughput_stats.requests, total_requests as u64);
    assert_eq!(
        throughput_stats.shed_connection + throughput_stats.shed_global,
        0
    );

    // --- arm 2: overload sheds with BUSY frames, depth stays bounded ---
    let watermark: i64 = 2;
    let burst = if quick { 48 } else { 96 };
    let mut server = QkbNetServer::start(
        sys.clone(),
        NetConfig {
            queue_watermark: watermark,
            inflight_per_connection: 1024,
            serve: ServeConfig {
                shards: 1,
                cache_capacity: 0,
                stage1_cache_bytes: 0,
                batch_max: 1,
                batch_window: Duration::ZERO,
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("start net server");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    for i in 0..burst {
        let id = i as u64 + 1;
        client
            .send(&NetRequest::Query {
                id,
                request: QueryRequest::question(&pool[i % pool.len()]),
            })
            .expect("send");
    }
    let (mut answered, mut shed) = (0u64, 0u64);
    for _ in 0..burst {
        match client.recv().expect("recv") {
            NetResponse::Answer { .. } => answered += 1,
            NetResponse::Busy { .. } => shed += 1,
            other => panic!("unexpected response under overload: {other:?}"),
        }
    }
    let overload_stats = server.stats();
    server.shutdown();
    let shed_rate = shed as f64 / burst as f64;
    println!(
        "\noverload: burst {burst}, watermark {watermark} -> answered {answered}, \
         shed {shed} ({:.0}% BUSY), queue_depth_peak {}",
        shed_rate * 100.0,
        overload_stats.queue_depth_peak
    );
    assert_eq!(answered + shed, burst as u64);
    assert!(
        overload_stats.queue_depth_peak <= watermark,
        "admission queue depth exceeded the watermark: {} > {watermark}",
        overload_stats.queue_depth_peak
    );
    assert!(
        shed > 0,
        "a {burst}-request burst against watermark {watermark} must shed"
    );

    // --- arm 3: crash recovery — journal replay vs re-driving the wire ---
    let sessions = if quick { 3 } else { 4 };
    let turns = if quick { 4 } else { 6 };
    let dir = fresh_dir("journal");
    let net_config = || NetConfig {
        journal: Some(JournalConfig {
            fsync: false,
            ..JournalConfig::new(&dir)
        }),
        serve: ServeConfig {
            shards: 1,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    };
    let t0 = Instant::now();
    let journal_stats;
    {
        let server = QkbNetServer::start(sys.clone(), net_config()).expect("start net server");
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        for t in 0..turns {
            for s in 0..sessions {
                client
                    .query_in_session(
                        &format!("session-{s}"),
                        QueryRequest::question(&pool[(2 * s + t) % pool.len()]),
                    )
                    .expect("session turn");
            }
        }
        journal_stats = server.stats().journal.expect("journal attached");
    }
    let live_wall = t0.elapsed();

    let t0 = Instant::now();
    let recovered = QkbNetServer::start(sys.clone(), net_config()).expect("recover net server");
    let replay_wall = t0.elapsed();
    let report = recovered.replay_report();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    let total_turns = (sessions * turns) as u64;
    assert_eq!(
        report.replayed_turns, total_turns,
        "recovery must replay every committed turn"
    );
    assert_eq!(report.dropped_records, 0);
    let replay_speedup = live_wall.as_secs_f64() / replay_wall.as_secs_f64();
    println!(
        "crash recovery: {sessions} sessions x {turns} turns; live run {:.0} ms, \
         journal replay {:.0} ms -> replay_speedup {replay_speedup:.2}x \
         ({} appends journaled)",
        live_wall.as_secs_f64() * 1e3,
        replay_wall.as_secs_f64() * 1e3,
        journal_stats.appends
    );

    let report_json = Value::object()
        .with("bench", "net")
        .with("quick", quick)
        .with("clients", clients)
        .with("requests", total_requests)
        .with("rps", rps)
        .with("p50_ms", p50_ms)
        .with("p95_ms", p95_ms)
        .with(
            "overload",
            Value::object()
                .with("burst", burst)
                .with("watermark", watermark)
                .with("answered", answered)
                .with("shed", shed)
                .with("shed_rate", shed_rate)
                .with("queue_depth_peak", overload_stats.queue_depth_peak),
        )
        .with(
            "replay",
            Value::object()
                .with("sessions", sessions)
                .with("turns", total_turns)
                .with("live_wall_s", live_wall.as_secs_f64())
                .with("replay_wall_s", replay_wall.as_secs_f64())
                .with("journal", journal_stats.to_json()),
        )
        .with("replay_speedup", replay_speedup)
        .with("throughput_stats", throughput_stats.to_json());
    std::fs::write(&out_path, report_json.to_string()).expect("write bench report");
    println!("report written to {out_path}");
}
