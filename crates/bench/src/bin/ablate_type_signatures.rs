//! Ablation: the type-signature feature (the paper attributes the
//! joint-vs-pipeline NED gap of Table 4 to it: Liverpool-city vs
//! Liverpool-F.C. errors appear when `ts` is omitted).
//!
//! Run: `cargo run -p qkb-bench --release --bin ablate_type_signatures`

use qkb_bench::{assess_links, build_fixture, fmt_ci, Table};
use qkb_corpus::Assessor;
use qkbfly::{Qkbfly, QkbflyConfig, Variant};

fn main() {
    println!("== Ablation: type signatures in the joint model ==\n");
    let fx = build_fixture();
    let corpus = fx.wiki(40, 2026);
    let assessor = Assessor::new(&fx.world);
    let mut t = Table::new(["Configuration", "NED precision", "#Links"]);
    for (name, variant) in [
        ("joint + type signatures", Variant::Joint),
        (
            "joint - type signatures (pipeline weights)",
            Variant::PipelineArch,
        ),
    ] {
        let sys = Qkbfly::with_config(
            qkb_bench::clone_repo(&fx.world),
            fx.patterns(),
            fx.stats(),
            QkbflyConfig {
                variant,
                ..Default::default()
            },
        );
        let mut links = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let result = sys.build_kb(std::slice::from_ref(&doc.text));
            for l in result.links {
                links.push((d, l.sentence, l.phrase, l.entity));
            }
        }
        let s = assess_links(&assessor, &corpus.docs, &links, 200, 18);
        t.row([
            name.to_string(),
            fmt_ci(s.precision, s.ci),
            s.n_extractions.to_string(),
        ]);
    }
    t.print();
}
