//! **Table 7 + Figure 5** — spouse extraction: QKBfly (all relations,
//! τ = 0.9, filter to the married-to synset) vs the DeepDive-style
//! per-relation extractor, as precision@k and precision–recall curves.
//!
//! Run: `cargo run -p qkb-bench --release --bin table7_fig5 [-- --scale N]`

use qkb_bench::{build_fixture, scale, Table};
use qkb_deepdive::DeepDive;
use qkb_util::stats::{pr_curve, precision_at};
use qkb_util::text::normalize;
use std::collections::HashSet;
use std::time::Instant;

/// Unordered surname-pair key for matching extractions to gold couples.
fn key(a: &str, b: &str) -> (String, String) {
    let last = |s: &str| {
        normalize(s)
            .split(' ')
            .next_back()
            .unwrap_or_default()
            .to_string()
    };
    let (x, y) = (last(a), last(b));
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

fn main() {
    let s = scale();
    println!("== Table 7 / Figure 5: spouse extraction vs DeepDive ==\n");
    let fx = build_fixture();
    // Distinct train / eval renderings of the world (same facts, different
    // documents — like training on one crawl and evaluating on another).
    let train = fx.wiki(60 * s, 71);
    let eval = fx.wiki(60 * s, 72);
    let eval_texts: Vec<String> = eval.docs.iter().map(|d| d.text.clone()).collect();

    // Gold spouse pairs (surname-pair level).
    let gold: HashSet<(String, String)> = fx
        .world
        .spouse_pairs()
        .into_iter()
        .map(|(a, b)| key(&fx.world.entity(a).canonical, &fx.world.entity(b).canonical))
        .collect();

    // --- DeepDive ---
    let t0 = Instant::now();
    let mut dd = DeepDive::new(fx.world.repo.gazetteer());
    let train_texts: Vec<String> = train.docs.iter().map(|d| d.text.clone()).collect();
    let positives: Vec<(String, String)> = fx
        .world
        .spouse_pairs()
        .into_iter()
        .map(|(a, b)| {
            (
                fx.world.entity(a).canonical.clone(),
                fx.world.entity(b).canonical.clone(),
            )
        })
        .collect();
    dd.train(&train_texts, &positives, 73);
    let dd_ranked = dd.extract(&eval_texts, 0.05);
    let dd_time = t0.elapsed();
    let dd_correct: Vec<bool> = dd_ranked
        .iter()
        .map(|e| gold.contains(&key(&e.a, &e.b)))
        .collect();

    // --- QKBfly: extract everything, filter the married-to synset, rank
    // by confidence (τ = 0.9 regime of §7.3 corresponds to the top of the
    // ranking). ---
    let t1 = Instant::now();
    let sys = {
        let cfg = qkbfly::QkbflyConfig {
            tau: 0.0, // rank by confidence; precision@k slices the list
            ..Default::default()
        };
        qkbfly::Qkbfly::with_config(
            qkb_bench::clone_repo(&fx.world),
            fx.patterns(),
            fx.stats(),
            cfg,
        )
    };
    let patterns = fx.patterns();
    let married = patterns.lookup("married to").expect("synset");
    let mut qk_pairs: Vec<(f64, (String, String))> = Vec::new();
    let mut seen = HashSet::new();
    for doc in &eval.docs {
        let result = sys.build_kb(std::slice::from_ref(&doc.text));
        for f in result.kb.iter_facts() {
            let is_married = match &f.relation {
                qkb_kb::RelationRef::Canonical(id) => {
                    patterns.canonical(*id) == patterns.canonical(married)
                }
                qkb_kb::RelationRef::Novel(p) => p.starts_with("marry") || p.starts_with("wed"),
            };
            if !is_married {
                continue;
            }
            let subj = result.kb.display_arg(&f.subject);
            let Some(obj) = f.args.first().map(|a| result.kb.display_arg(a)) else {
                continue;
            };
            let k = key(&subj, &obj);
            if k.0.is_empty() || k.1.is_empty() || k.0 == k.1 {
                continue;
            }
            if seen.insert(k.clone()) {
                qk_pairs.push((f.confidence, k));
            }
        }
    }
    let qk_time = t1.elapsed();
    qk_pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let qk_correct: Vec<bool> = qk_pairs.iter().map(|(_, k)| gold.contains(k)).collect();

    // --- Table 7 (precision at scaled extraction counts) ---
    let ks = [10, 25, 50];
    let mut t = Table::new(["Method", "P@10", "P@25", "P@50", "#Pairs", "Run-time"]);
    let fmt_p = |c: &[bool], k: usize| {
        precision_at(c, k)
            .map(|p| format!("{p:.2}"))
            .unwrap_or_else(|| "—".to_string())
    };
    t.row([
        "QKBfly".to_string(),
        fmt_p(&qk_correct, ks[0]),
        fmt_p(&qk_correct, ks[1]),
        fmt_p(&qk_correct, ks[2]),
        qk_correct.len().to_string(),
        format!("{:.1} s", qk_time.as_secs_f64()),
    ]);
    t.row([
        "DeepDive".to_string(),
        fmt_p(&dd_correct, ks[0]),
        fmt_p(&dd_correct, ks[1]),
        fmt_p(&dd_correct, ks[2]),
        dd_correct.len().to_string(),
        format!("{:.1} s", dd_time.as_secs_f64()),
    ]);
    t.print();

    println!("\nPaper (Table 7; precision at 50/150/250 extractions):");
    let mut p = Table::new(["Method", "P@50", "P@150", "P@250", "Run-time"]);
    p.row(["QKBfly", "1.0", "0.95", "0.87", "206 min"]);
    p.row(["DeepDive", "1.0", "0.91", "—", "117 min"]);
    p.print();

    // --- Figure 5: precision-recall series (CSV on stdout) ---
    println!("\nFigure 5 series (k,precision,recall):");
    let n_gold = gold.len();
    for (name, correct) in [("QKBfly", &qk_correct), ("DeepDive", &dd_correct)] {
        for pt in pr_curve(correct, Some(n_gold)) {
            if pt.k % 5 == 0 || pt.k == correct.len() {
                println!("{name},{},{:.3},{:.3}", pt.k, pt.precision, pt.recall);
            }
        }
    }

    let qk_tail = precision_at(&qk_correct, qk_correct.len().min(40)).unwrap_or(0.0);
    let dd_tail = precision_at(&dd_correct, dd_correct.len().min(40)).unwrap_or(0.0);
    println!(
        "\nShape: both precise at top: {} | QKBfly reaches deeper recall: {} | DeepDive faster: {}",
        precision_at(&qk_correct, 5).unwrap_or(0.0) >= 0.8
            && precision_at(&dd_correct, 5).unwrap_or(0.0) >= 0.8,
        qk_correct.iter().filter(|&&c| c).count() >= dd_correct.iter().filter(|&&c| c).count(),
        dd_time < qk_time,
    );
    let _ = (qk_tail, dd_tail);
}
