//! **Session-streaming microbench** — the paper's interactive-exploration
//! scenario (§6) as a multi-turn workload: each client session issues a
//! *drifting* sequence of queries whose retrieved sets overlap heavily
//! turn over turn.
//!
//! Per-query isolated serving (the baseline) rebuilds a KB fragment from
//! scratch every turn, re-paying stage 1 (preprocess + graph + NED/CR,
//! the dominant cost) for every document of every turn. Session
//! streaming (`query_in_session`) keeps one growing KB per session and
//! extends it incrementally — a warm turn pays stage 1 only for the one
//! or two documents that drifted in. The report asserts a ≥2× throughput
//! win on warm turns, plus the byte-identity of session answers with
//! offline cold builds of the accumulated union.
//!
//! Both configurations run with the fragment and stage-1 caches *off*,
//! so the measured gap is the session streaming itself, not cache
//! interplay (`bench_incremental` measures the caches).
//!
//! Phase accounting uses `QkbServer::reset_stats` at the warm-up/measure
//! boundary — phase stats are read directly, never hand-subtracted.
//!
//! Run: `cargo run -p qkb_bench --release --bin bench_session
//!       [-- --quick] [-- --clients N] [-- --out FILE.json]`
//!
//! The JSON report (default `BENCH_session.json`) rides next to the
//! other reports in the CI bench-smoke artifacts.

use qkb_bench::{build_fixture, clone_repo, Table};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryEngine, QueryRequest, ServeConfig, ServeStats};
use qkb_util::json::Value;
use qkbfly::{ComputeStage1, Qkbfly};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// An engine whose retrieval returns precomputed drifting windows:
/// query `q<i>` (with `i = session * turns + turn`) maps to `sets[i]`,
/// a window over the document pool that slides by one document per
/// turn — consecutive turns of one session overlap in all but one
/// document. Build and answer paths delegate to the real `QaSystem`.
struct DriftEngine {
    sys: Arc<QaSystem>,
    sets: Vec<Vec<usize>>,
}

impl DriftEngine {
    fn new(sys: Arc<QaSystem>, sessions: usize, turns: usize, pool: usize, k: usize) -> Self {
        let pool = pool.min(sys.n_docs());
        let k = k.min(pool);
        let mut sets = Vec::with_capacity(sessions * turns);
        for s in 0..sessions {
            // Sessions start at spread-out offsets so cross-session
            // overlap stays incidental; each turn slides the window.
            let base = s * pool / sessions.max(1);
            for t in 0..turns {
                sets.push((0..k).map(|j| (base + t + j) % pool).collect());
            }
        }
        Self { sys, sets }
    }

    fn query_index(text: &str) -> usize {
        text.trim_start_matches('q').parse().expect("q<i> query")
    }
}

impl QueryEngine for DriftEngine {
    fn qkbfly(&self) -> &Qkbfly {
        self.sys.qkbfly()
    }

    fn retrieve(&self, request: &QueryRequest) -> Vec<usize> {
        self.sets[Self::query_index(&request.text)].clone()
    }

    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String> {
        self.sys.doc_texts(doc_ids)
    }

    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        self.sys.doc_fingerprint(doc_ids)
    }

    fn answer_kb(&self, request: &QueryRequest, kb: &qkb_kb::OnTheFlyKb) -> Vec<String> {
        self.sys.answer_in_kb(&request.text, kb)
    }
}

/// Plays query turns `lo..hi` of every session across `clients`
/// closed-loop threads; each thread owns a disjoint set of sessions and
/// plays their turns in order (turn order matters — it is the session's
/// history). `in_session` switches between the streaming path and the
/// isolated per-query baseline.
fn run_turns(
    server: &QkbServer<Arc<DriftEngine>>,
    sessions: usize,
    turns: usize,
    lo: usize,
    hi: usize,
    clients: usize,
    in_session: bool,
) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = server.client();
            scope.spawn(move || {
                for s in (0..sessions).skip(c).step_by(clients) {
                    for t in lo..hi {
                        let request = QueryRequest::question(format!("q{}", s * turns + t));
                        let _ = if in_session {
                            client.query_in_session(&format!("session-{s}"), request)
                        } else {
                            client.query(request)
                        };
                    }
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    let quick = arg_flag("--quick") || std::env::var("QKB_BENCH_QUICK").as_deref() == Ok("1");
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_session.json".to_string());
    let sessions = if quick { 6 } else { 8 };
    let turns = if quick { 4 } else { 6 };
    let per_query = if quick { 4 } else { 5 };
    let pool = if quick { 16 } else { 24 };

    println!("== session-scoped streaming KB vs per-query isolated builds ==\n");
    let fx = build_fixture();
    // Concatenate generated articles into paper-sized documents so stage 1
    // dominates the per-turn cost, as it does on real news text.
    let concat = 3;
    let wiki = fx.wiki(pool * concat, 97).docs;
    let docs: Vec<qkb_corpus::GoldDoc> = wiki
        .chunks(concat)
        .map(|chunk| {
            let mut doc = chunk[0].clone();
            doc.text = chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            doc
        })
        .collect();
    let qkb = Qkbfly::new(clone_repo(&fx.world), fx.patterns(), fx.stats());
    let sys = Arc::new(QaSystem::new(fx.world.clone(), docs, qkb));
    let engine = Arc::new(DriftEngine::new(
        sys.clone(),
        sessions,
        turns,
        pool,
        per_query,
    ));
    println!(
        "{sessions} sessions x {turns} turns, {per_query}-doc windows drifting over a \
         {pool}-doc pool (warm turns share {} docs with their predecessor)",
        per_query - 1
    );

    // Caches off in both configurations: the measured gap is session
    // streaming itself, not fragment/stage-1 cache reuse.
    let config = || ServeConfig {
        shards: 2,
        cache_capacity: 0,
        stage1_cache_bytes: 0,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    };

    // --- determinism: every session answer equals answering over an
    // offline cold build of the documents accumulated so far ---
    {
        let server = QkbServer::start(engine.clone(), config());
        let mut union: Vec<String> = Vec::new();
        for t in 0..turns.min(3) {
            let response =
                server.query_in_session("probe", QueryRequest::question(format!("q{t}")));
            for text in sys.doc_texts(&engine.sets[t]) {
                if !union.contains(&text) {
                    union.push(text);
                }
            }
            let expected = sys.answer_in_kb(&format!("q{t}"), &sys.qkbfly().build_kb(&union).kb);
            assert_eq!(
                response.answers, expected,
                "session turn {t} ≠ offline cold union build"
            );
        }
        server.shutdown();
        println!("determinism: OK (session answers == offline cold union builds)\n");
    }

    let mut walls: Vec<Duration> = Vec::new();
    let mut stats_json: Vec<Value> = Vec::new();
    let mut table = Table::new(["Config", "Warm req/s", "Docs built", "Deduped", "Extends"]);
    let warm_requests = sessions * (turns - 1);
    for (name, in_session) in [
        ("isolated per-query builds", false),
        ("session streaming", true),
    ] {
        let server = QkbServer::start(engine.clone(), config());
        // Turn 0 of every session: cold in both configurations.
        let _ = run_turns(&server, sessions, turns, 0, 1, clients, in_session);
        // Phase boundary: warm-turn stats are read directly.
        server.reset_stats();
        let wall = run_turns(&server, sessions, turns, 1, turns, clients, in_session);
        let stats: ServeStats = server.stats();
        server.shutdown();
        let rps = warm_requests as f64 / wall.as_secs_f64();
        let (deduped, extends) = (stats.sessions.docs_deduped, stats.sessions.turns_extended);
        table.row([
            name.to_string(),
            format!("{rps:.1}"),
            format!("{}", stats.docs_built + stats.sessions.docs_merged),
            format!("{deduped}"),
            format!("{extends}"),
        ]);
        walls.push(wall);
        stats_json.push(stats.to_json());
    }
    table.print();

    let speedup = walls[0].as_secs_f64() / walls[1].as_secs_f64();
    println!("\nwarm-turn speedup of session streaming: {speedup:.2}x");

    // --- per-turn answer latency vs KB size: the indexed probe must stay
    // flat while the session KB grows ≥10x; the pre-index full scan (the
    // bug this series pins) grows with the fact store ---
    let series_turns = if quick { 41 } else { 61 };
    let series_k = 4usize;
    let series_pool = series_turns - 1 + series_k;
    println!(
        "\n== per-turn answer latency vs session-KB size ({series_turns} turns, \
         {series_k}-doc window drifting over {series_pool} docs) =="
    );
    // The first window holds real-world (wiki) documents the probe
    // questions retrieve from; the drift then streams in *fiction-domain*
    // (wikia) documents whose entity space is disjoint — the session
    // accumulates knowledge unrelated to the probes, which is exactly
    // when per-turn answer cost must not scale with |KB|.
    let mut series_wiki = fx.wiki(series_k * concat, 131).docs;
    series_wiki.extend(fx.wikia((series_pool - series_k) * concat, 137).docs);
    let series_docs: Vec<qkb_corpus::GoldDoc> = series_wiki
        .chunks(concat)
        .map(|chunk| {
            let mut doc = chunk[0].clone();
            doc.text = chunk
                .iter()
                .map(|d| d.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            doc
        })
        .collect();
    let series_sys = QaSystem::new(fx.world.clone(), series_docs, sys.qkbfly().clone());
    // A fixed probe set of real questions, asked after every turn so the
    // per-turn numbers compare like with like. Their retrievals target
    // the early pool, which stays resident from turn 1.
    let probe_questions: Vec<String> = qkb_corpus::questions::trends_test(&fx.world, 6, 17)
        .into_iter()
        .map(|q| q.text)
        .collect();
    let reps = 9usize;
    let time_probe = |answer: &dyn Fn(&str)| -> f64 {
        // One untimed warmup pass, then min over repetitions of the
        // whole probe set: robust to scheduler noise and cold caches
        // without hiding real growth.
        for q in &probe_questions {
            answer(q);
        }
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                for q in &probe_questions {
                    answer(q);
                }
                t.elapsed().as_secs_f64() * 1e6
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut kb = qkb_kb::OnTheFlyKb::new();
    let mut series = Vec::new();
    let (mut first_bytes, mut first_indexed, mut first_scan) = (0u64, 0.0f64, 0.0f64);
    for t in 0..series_turns {
        let window: Vec<usize> = (0..series_k).map(|j| t + j).collect();
        series_sys.extend_kb_for_docs_with(&ComputeStage1, &mut kb, &window);
        let indexed_us = time_probe(&|q| {
            let _ = series_sys.answer_in_kb(q, &kb);
        });
        let scan_us = time_probe(&|q| {
            let _ = series_sys.answer_in_kb_scan(q, &kb);
        });
        if t == 0 {
            (first_bytes, first_indexed, first_scan) = (kb.approx_bytes(), indexed_us, scan_us);
        }
        series.push(
            Value::object()
                .with("turn", t + 1)
                .with("docs", kb.n_docs())
                .with("facts", kb.n_facts())
                .with("kb_bytes", kb.approx_bytes())
                .with("indexed_us", indexed_us)
                .with("scan_us", scan_us),
        );
    }
    let (last_bytes, last_indexed, last_scan) = (
        kb.approx_bytes(),
        series.last().expect("turns")["indexed_us"]
            .as_f64()
            .expect("f64"),
        series.last().expect("turns")["scan_us"]
            .as_f64()
            .expect("f64"),
    );
    let growth = last_bytes as f64 / first_bytes as f64;
    let indexed_ratio = last_indexed / first_indexed;
    let scan_ratio = last_scan / first_scan;
    println!(
        "KB grew {growth:.1}x ({} -> {} docs); per-turn answer latency: \
         indexed {first_indexed:.0}us -> {last_indexed:.0}us ({indexed_ratio:.2}x), \
         scan {first_scan:.0}us -> {last_scan:.0}us ({scan_ratio:.2}x)",
        series_k, series_pool
    );

    let report = Value::object()
        .with("bench", "session")
        .with("quick", quick)
        .with("clients", clients)
        .with("sessions", sessions)
        .with("turns", turns)
        .with("docs_per_query", per_query)
        .with("doc_pool", pool)
        .with("warm_requests", warm_requests)
        .with("isolated_wall_s", walls[0].as_secs_f64())
        .with("session_wall_s", walls[1].as_secs_f64())
        .with(
            "isolated_rps",
            warm_requests as f64 / walls[0].as_secs_f64(),
        )
        .with("session_rps", warm_requests as f64 / walls[1].as_secs_f64())
        .with("speedup", speedup)
        .with("determinism", "ok")
        .with("isolated_stats", stats_json.remove(0))
        .with("session_stats", stats_json.remove(0))
        .with(
            "latency_vs_size",
            Value::object()
                .with("turns", series_turns)
                .with("window_docs", series_k)
                .with("doc_pool", series_pool)
                .with("probe_questions", probe_questions.len())
                .with("kb_growth", growth)
                .with("indexed_ratio", indexed_ratio)
                .with("scan_ratio", scan_ratio)
                .with("series", Value::array(series)),
        );
    std::fs::write(&out_path, report.to_string()).expect("write bench report");
    println!("report written to {out_path}");

    assert!(
        speedup >= 2.0,
        "session streaming must yield ≥2x over per-query isolated builds on warm \
         multi-turn traffic, got {speedup:.2}x"
    );
    assert!(
        growth >= 10.0,
        "the latency series must grow the session KB ≥10x, got {growth:.1}x"
    );
    assert!(
        indexed_ratio <= 1.5,
        "indexed per-turn answer latency must stay flat (≤1.5x turn-1) as the \
         session KB grows {growth:.1}x, got {indexed_ratio:.2}x"
    );
    assert!(
        scan_ratio >= 2.0,
        "the pre-index scan path should degrade with KB size (the bug this \
         series pins); got only {scan_ratio:.2}x on a {growth:.1}x KB"
    );
}
