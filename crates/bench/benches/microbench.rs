//! Criterion micro-benchmarks: the per-sentence Open IE stack (Table 5's
//! runtime axis), greedy vs ILP joint inference (Table 6's runtime axis),
//! and the densification recompute strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qkb_corpus::world::{World, WorldConfig};
use qkb_openie::{ClausIe, Extractor, Ollie, OpenIe4, Reverb};
use qkb_parse::ParserBackend;
use qkbfly::{Qkbfly, QkbflyConfig, SolverKind, Variant};

fn fixture() -> (World, Vec<String>) {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 4, 99);
    let texts = corpus.docs.iter().map(|d| d.text.clone()).collect();
    (world, texts)
}

fn system(world: &World, solver: SolverKind) -> Qkbfly {
    let bg = qkb_corpus::background::background_corpus(world, 15, 5);
    let stats = qkb_corpus::background::build_stats(world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    Qkbfly::with_config(
        repo,
        patterns,
        stats,
        QkbflyConfig {
            variant: Variant::Joint,
            solver,
            ..Default::default()
        },
    )
}

/// Table 5's runtime axis: extraction systems per sentence.
fn openie_runtime(c: &mut Criterion) {
    let (world, _) = fixture();
    let corpus = qkb_corpus::docgen::reverb_corpus(&world, 60, 55);
    let nlp = qkb_nlp::Pipeline::with_gazetteer(world.repo.gazetteer());
    let sentences: Vec<qkb_nlp::Sentence> = corpus
        .docs
        .iter()
        .flat_map(|d| nlp.annotate(&d.text).sentences)
        .collect();

    let mut group = c.benchmark_group("openie_per_sentence");
    let systems: Vec<(&str, Box<dyn Extractor>)> = vec![
        (
            "clausie_chart",
            Box::new(ClausIe::with_backend(ParserBackend::Chart)),
        ),
        ("qkbfly_greedy", Box::new(ClausIe::new())),
        ("reverb", Box::new(Reverb::new())),
        ("ollie", Box::new(Ollie::new())),
        ("openie4", Box::new(OpenIe4::new())),
    ];
    for (name, sys) in &systems {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for s in &sentences {
                    n += sys.extract(s).len();
                }
                n
            })
        });
    }
    group.finish();
}

/// Table 6's runtime axis: greedy densification vs exact ILP.
fn greedy_vs_ilp(c: &mut Criterion) {
    let (world, texts) = fixture();
    let greedy = system(&world, SolverKind::Greedy);
    let ilp = system(&world, SolverKind::Ilp);
    let doc = texts[0].clone();

    let mut group = c.benchmark_group("joint_inference_per_doc");
    group.sample_size(20);
    group.bench_function("greedy", |b| {
        b.iter(|| greedy.build_kb(std::slice::from_ref(&doc)).kb.n_facts())
    });
    group.bench_function("ilp", |b| {
        b.iter(|| ilp.build_kb(std::slice::from_ref(&doc)).kb.n_facts())
    });
    group.finish();
}

/// Dependency parser backends in isolation (the ClausIE-vs-QKBfly gap).
fn parser_backends(c: &mut Criterion) {
    let (world, _) = fixture();
    let corpus = qkb_corpus::docgen::reverb_corpus(&world, 40, 56);
    let nlp = qkb_nlp::Pipeline::with_gazetteer(world.repo.gazetteer());
    let sentences: Vec<qkb_nlp::Sentence> = corpus
        .docs
        .iter()
        .flat_map(|d| nlp.annotate(&d.text).sentences)
        .collect();
    let mut group = c.benchmark_group("parser_per_sentence");
    group.bench_function("greedy", |b| {
        let p = qkb_parse::GreedyParser::new();
        b.iter(|| sentences.iter().map(|s| p.parse(s).len()).sum::<usize>())
    });
    group.bench_function("chart", |b| {
        let p = qkb_parse::ChartParser::new();
        b.iter(|| sentences.iter().map(|s| p.parse(s).len()).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, openie_runtime, greedy_vs_ilp, parser_backends);
criterion_main!(benches);
