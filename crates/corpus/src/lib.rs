//! # qkb-corpus
//!
//! Synthetic data substrate for the QKBfly reproduction. The paper
//! evaluates on Wikipedia pages, news articles, Wikia pages, the Reverb-500
//! sentence sample and Google-Trends questions — none of which can ship
//! with a reproduction. This crate substitutes a **world model**: a closed
//! universe of entities (with aliases, deliberate alias ambiguity, genders,
//! types) and gold facts over them, from which every corpus is *rendered*:
//!
//! * [`world`] — entity/fact generation per domain (film, music, football,
//!   politics, science) plus emerging entities and news events;
//! * [`render`] — sentence realization of gold facts with paraphrase
//!   templates, pronouns, appositions, subordinate clauses and noise;
//! * [`docgen`] — document builders: Wikipedia-like, news, Wikia-like,
//!   Reverb-500 (each mirrors the corresponding benchmark's profile);
//! * [`gold`] — per-sentence gold annotations and the automatic assessor
//!   that replaces the paper's two human judges;
//! * [`background`] — the background corpus (C) and statistics (S): runs
//!   the *real* pipeline (ClausIE included) over generated pages whose
//!   entity mentions carry href-like gold links, exactly as §2.2 describes;
//! * [`questions`] — WebQuestions-like training questions and
//!   GoogleTrends-like test questions about emerging events.
//!
//! Everything is deterministic given the seed in [`world::WorldConfig`].

pub mod background;
pub mod docgen;
pub mod gold;
pub mod questions;
pub mod render;
pub mod world;

pub use docgen::{DocKind, GoldCorpus, GoldDoc};
pub use gold::{Assessor, GoldFactInstance, GoldMention};
pub use world::{World, WorldConfig, WorldEntityId};
