//! Background corpus (C) and statistics (S).
//!
//! §2.2: the background corpus is preprocessed with the *same* linguistic
//! pipeline as query-time documents; clause components are mapped to
//! entities via href links; from the result QKBfly computes anchor priors,
//! entity context vectors, and clause-level type-signature statistics.
//! This module does exactly that over generated pages whose gold mentions
//! play the role of href anchors — the statistics pipeline is the real
//! one (tokenizer, tagger, ClausIE), not a shortcut.

use crate::docgen::{wiki_corpus, GoldCorpus, GoldDoc};
use crate::gold::Assessor;
use crate::world::World;
use qkb_kb::{BackgroundStats, StatsBuilder, TypeId};
use qkb_nlp::Pipeline;
use qkb_openie::ClausIe;

/// Generates the background corpus: `n_pages` Wikipedia-like pages over
/// repository entities (anchor-annotated via gold mentions).
pub fn background_corpus(world: &World, n_pages: usize, seed: u64) -> GoldCorpus {
    wiki_corpus(world, n_pages, seed)
}

/// Runs the full pre-processing pipeline over the background corpus and
/// accumulates the statistics the graph algorithm consumes.
pub fn build_stats(world: &World, corpus: &GoldCorpus) -> BackgroundStats {
    let pipeline = Pipeline::with_gazetteer(world.repo.gazetteer());
    let clausie = ClausIe::new();
    let assessor = Assessor::new(world);
    let mut b = StatsBuilder::new();
    let ts = world.repo.type_system();
    let time_type: Vec<TypeId> = ts.get("TIME").into_iter().collect();

    for doc in &corpus.docs {
        let ann = pipeline.annotate(&doc.text);

        // (a) Article tokens feed the main entity's context vector.
        if let Some(main) = doc.main_entity {
            if let Some(rid) = world.repo_id(main) {
                let tokens: Vec<String> = ann
                    .sentences
                    .iter()
                    .flat_map(|s| s.tokens.iter())
                    .filter(|t| t.text.chars().any(|c| c.is_alphanumeric()))
                    .map(|t| t.lemma.clone())
                    .collect();
                b.add_entity_article(rid, tokens.iter().map(String::as_str));
            }
        }

        // (b) Every gold mention is an anchor; its sentence tokens also
        // enrich the mentioned entity's context (the article-proxy for
        // entities without own pages).
        for m in &doc.mentions {
            if m.pronoun {
                continue;
            }
            let Some(rid) = world.repo_id(m.entity) else {
                continue;
            };
            b.add_anchor(&m.phrase, rid);
            if let Some(sentence) = ann.sentences.get(m.sentence) {
                let tokens: Vec<String> = sentence
                    .tokens
                    .iter()
                    .filter(|t| t.text.chars().any(|c| c.is_alphanumeric()))
                    .map(|t| t.lemma.clone())
                    .collect();
                b.add_entity_article(rid, tokens.iter().map(String::as_str));
            }
        }

        // (c) Clause-level type signatures: run ClausIE, map arguments to
        // entities via the gold anchors, record (types, types, pattern).
        // Pipeline sentence segmentation must agree with the renderer's.
        if ann.sentences.len() != doc.sentences.len() {
            continue;
        }
        for sentence in &ann.sentences {
            for clause in clausie.detect(sentence) {
                let subj_text = clause.subject.text(sentence);
                let subj_types = entity_types(world, &assessor, doc, sentence.index, &subj_text);
                let Some(subj_types) = subj_types else {
                    continue;
                };
                for arg in clause.non_subject_args() {
                    let arg_text = arg.text(sentence);
                    let arg_types = if sentence.tokens[arg.head].ner == qkb_nlp::NerTag::Time {
                        Some(time_type.clone())
                    } else {
                        entity_types(world, &assessor, doc, sentence.index, &arg_text)
                    };
                    let Some(arg_types) = arg_types else {
                        continue;
                    };
                    let pattern = clause.relation_pattern(arg);
                    b.add_clause_signature(&subj_types, &arg_types, &pattern);
                }
            }
        }
    }
    b.finalize()
}

/// Types of the entity a phrase denotes per the gold anchors (None when
/// unmapped — the paper only counts clauses whose arguments map to
/// entities or names/times).
fn entity_types(
    world: &World,
    assessor: &Assessor<'_>,
    doc: &GoldDoc,
    sentence: usize,
    phrase: &str,
) -> Option<Vec<TypeId>> {
    let wid = assessor.gold_entity_of(doc, sentence, phrase)?;
    let rid = world.repo_id(wid)?;
    Some(world.repo.types_of(rid).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn stats_have_priors_contexts_and_signatures() {
        let world = World::generate(WorldConfig::default());
        let corpus = background_corpus(&world, 12, 99);
        let stats = build_stats(&world, &corpus);
        assert!(stats.has_priors());
        assert!(stats.n_entity_contexts() > 0);

        // A mentioned entity should have prior mass on its canonical name.
        let doc = &corpus.docs[0];
        let m = doc
            .mentions
            .iter()
            .find(|m| !m.pronoun && world.repo_id(m.entity).is_some())
            .expect("a linked mention");
        let rid = world.repo_id(m.entity).expect("linked");
        assert!(stats.prior(&m.phrase, rid) > 0.0);
    }

    #[test]
    fn ambiguous_alias_prior_splits() {
        let world = World::generate(WorldConfig::default());
        let corpus = background_corpus(&world, 30, 5);
        let stats = build_stats(&world, &corpus);
        // The club/city shared alias should have prior mass distributed
        // over at least one of its candidates.
        let club = world
            .entities
            .iter()
            .find(|e| e.type_names == ["FOOTBALL_CLUB"] && e.aliases.len() > 1)
            .expect("aliased club");
        let alias = &club.aliases[1];
        let cands = world.repo.candidates(alias);
        assert!(cands.len() >= 2);
        let total: f64 = cands.iter().map(|&c| stats.prior(alias, c)).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn type_signatures_capture_play_for() {
        let world = World::generate(WorldConfig::default());
        let corpus = background_corpus(&world, 40, 11);
        let stats = build_stats(&world, &corpus);
        let ts = world.repo.type_system();
        let footballer = ts.get("FOOTBALLER").expect("t");
        let club = ts.get("FOOTBALL_CLUB").expect("t");
        let city = ts.get("CITY").expect("t");
        let sig_club = stats.type_signature(&[footballer], &[club], "play for");
        let sig_city = stats.type_signature(&[footballer], &[city], "play for");
        assert!(
            sig_club > sig_city,
            "play-for should prefer clubs: club={sig_club} city={sig_city}"
        );
    }
}
