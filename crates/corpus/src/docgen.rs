//! Document builders: one generator per evaluation corpus of the paper.
//!
//! * Wikipedia-like pages (DEFIE-Wikipedia substitute, §7.1/§7.2) —
//!   entity-centric biographies with pronouns, appositions, subordination;
//! * news articles (News dataset substitute, §7.2) — event-centric, heavy
//!   pronoun use, ~quarter emerging entities;
//! * Wikia-like pages (§7.2) — long fiction recaps where ~70% of the
//!   mentioned characters are out-of-repository;
//! * Reverb-500 (§7.1, Table 5) — standalone sentences.

use crate::gold::{GoldFactInstance, GoldMention};
use crate::render::{
    coordinate, render_fact, render_lead, render_negated, render_noise, subordinate,
    with_apposition, RenderedSentence, SubjectMode,
};
use crate::world::{Domain, World, WorldEntityId};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Corpus flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocKind {
    /// Entity-centric encyclopedia page.
    Wikipedia,
    /// News article about a recent event.
    News,
    /// Fiction-recap page.
    Wikia,
    /// A standalone benchmark sentence.
    Reverb,
}

/// One generated document with gold annotations.
#[derive(Clone, Debug)]
pub struct GoldDoc {
    /// Corpus flavor.
    pub kind: DocKind,
    /// Title (page/article headline).
    pub title: String,
    /// The page's main entity, if entity-centric.
    pub main_entity: Option<WorldEntityId>,
    /// Full text.
    pub text: String,
    /// Sentence texts in order (what the pipeline will re-segment).
    pub sentences: Vec<String>,
    /// Gold entity mentions.
    pub mentions: Vec<GoldMention>,
    /// Gold fact instances.
    pub instances: Vec<GoldFactInstance>,
}

/// A generated corpus.
#[derive(Clone, Debug, Default)]
pub struct GoldCorpus {
    /// Documents in order.
    pub docs: Vec<GoldDoc>,
}

impl GoldCorpus {
    /// Total sentence count.
    pub fn n_sentences(&self) -> usize {
        self.docs.iter().map(|d| d.sentences.len()).sum()
    }
}

/// Incrementally builds a document, assigning sentence indices.
struct DocBuilder {
    sentences: Vec<String>,
    mentions: Vec<GoldMention>,
    instances: Vec<GoldFactInstance>,
}

impl DocBuilder {
    fn new() -> Self {
        Self {
            sentences: Vec::new(),
            mentions: Vec::new(),
            instances: Vec::new(),
        }
    }

    fn push(&mut self, mut r: RenderedSentence) {
        let idx = self.sentences.len();
        for m in &mut r.mentions {
            m.sentence = idx;
        }
        for i in &mut r.instances {
            i.sentence = idx;
        }
        self.sentences.push(r.text);
        self.mentions.extend(r.mentions);
        self.instances.extend(r.instances);
    }

    fn finish(self, kind: DocKind, title: String, main: Option<WorldEntityId>) -> GoldDoc {
        GoldDoc {
            kind,
            title,
            main_entity: main,
            text: self.sentences.join(" "),
            sentences: self.sentences,
            mentions: self.mentions,
            instances: self.instances,
        }
    }
}

/// Facts whose subject is `e`, as indices into `world.facts`.
fn fact_indices_of(world: &World, e: WorldEntityId, include_recent: bool) -> Vec<usize> {
    world
        .facts
        .iter()
        .enumerate()
        .filter(|(_, f)| f.subject == e && (include_recent || !f.recent))
        .map(|(i, _)| i)
        .collect()
}

/// Renders one entity page: lead + styled fact sentences + noise.
fn entity_page(
    world: &World,
    main: WorldEntityId,
    kind: DocKind,
    include_recent: bool,
    target_sentences: usize,
    rng: &mut SmallRng,
) -> GoldDoc {
    let mut b = DocBuilder::new();
    b.push(render_lead(world, main));
    let mut facts = fact_indices_of(world, main, include_recent);
    facts.shuffle(rng);
    let mut mentioned_main = true; // lead mentions the subject

    let mut i = 0usize;
    while b.sentences.len() < target_sentences && i < facts.len() {
        let f = facts[i];
        let style = rng.gen_range(0..100);
        match style {
            // Pronoun subject (only once the subject is established).
            0..=29 if mentioned_main => {
                if let Some(r) = render_fact(world, f, SubjectMode::Pronoun, rng) {
                    b.push(r);
                }
                i += 1;
            }
            // Coordination of two facts, second subject pronominalized.
            30..=44 if i + 1 < facts.len() => {
                let a = render_fact(world, f, SubjectMode::Alias, rng);
                let c = render_fact(world, facts[i + 1], SubjectMode::Canonical, rng);
                if let (Some(a), Some(c)) = (a, c) {
                    b.push(coordinate(world, a, c));
                    i += 2;
                } else {
                    i += 1;
                }
                mentioned_main = true;
            }
            // Subordinate lead-in.
            45..=54 if i + 1 < facts.len() => {
                let lead = render_fact(world, f, SubjectMode::Alias, rng);
                let mainr = render_fact(world, facts[i + 1], SubjectMode::Canonical, rng);
                if let (Some(l), Some(m)) = (lead, mainr) {
                    b.push(subordinate(l, m, rng));
                    i += 2;
                } else {
                    i += 1;
                }
                mentioned_main = true;
            }
            // Apposition after the subject.
            55..=64 => {
                if let Some(mut r) = render_fact(world, f, SubjectMode::Canonical, rng) {
                    with_apposition(world, &mut r);
                    b.push(r);
                }
                mentioned_main = true;
                i += 1;
            }
            // Negated statement (asserts nothing).
            65..=69 => {
                if let Some(r) = render_negated(world, f, rng) {
                    b.push(r);
                }
                mentioned_main = true;
                i += 1;
            }
            // Plain with alias subject.
            _ => {
                let mode = if rng.gen_bool(0.5) {
                    SubjectMode::Alias
                } else {
                    SubjectMode::Canonical
                };
                if let Some(r) = render_fact(world, f, mode, rng) {
                    b.push(r);
                }
                mentioned_main = true;
                i += 1;
            }
        }
        // Interleave filler.
        if rng.gen_bool(0.25) {
            b.push(render_noise(rng));
            mentioned_main = false;
        }
    }
    while b.sentences.len() < target_sentences.min(4) {
        b.push(render_noise(rng));
    }
    let title = world.entity(main).canonical.clone();
    b.finish(kind, title, Some(main))
}

/// DEFIE-Wikipedia-style corpus: `n_docs` entity pages.
pub fn wiki_corpus(world: &World, n_docs: usize, seed: u64) -> GoldCorpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let subjects: Vec<WorldEntityId> = world
        .entities
        .iter()
        .filter(|e| {
            !e.emerging
                && !matches!(e.domain, Domain::News | Domain::Fiction)
                && world.facts.iter().any(|f| f.subject == e.id && !f.recent)
        })
        .map(|e| e.id)
        .collect();
    let mut docs = Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let main = subjects[d % subjects.len().max(1)];
        let target = rng.gen_range(8..=16);
        docs.push(entity_page(
            world,
            main,
            DocKind::Wikipedia,
            false,
            target,
            &mut rng,
        ));
    }
    GoldCorpus { docs }
}

/// News corpus: event-centric articles around recent facts.
pub fn news_corpus(world: &World, n_docs: usize, seed: u64) -> GoldCorpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let recent: Vec<usize> = world
        .facts
        .iter()
        .enumerate()
        .filter(|(_, f)| f.recent)
        .map(|(i, _)| i)
        .collect();
    let mut docs = Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let mut b = DocBuilder::new();
        let &lead_fact = &recent[d % recent.len().max(1)];
        // Headline sentence: the event, canonical names.
        if let Some(r) = render_fact(world, lead_fact, SubjectMode::Canonical, &mut rng) {
            b.push(r);
        }
        let subject = world.facts[lead_fact].subject;
        // Follow-up: restate with pronoun; add background bio facts of the
        // participants (known entities), filler quotes.
        let mut pool: Vec<usize> = fact_indices_of(world, subject, true);
        for f in &world.facts[lead_fact].args {
            if let crate::world::GoldArg::Entity(e) = f {
                pool.extend(fact_indices_of(world, *e, false));
            }
        }
        pool.shuffle(&mut rng);
        let target = rng.gen_range(10..=20);
        let mut i = 0;
        while b.sentences.len() < target && i < pool.len() {
            let mode = if rng.gen_bool(0.4) {
                SubjectMode::Pronoun
            } else {
                SubjectMode::Alias
            };
            if let Some(r) = render_fact(world, pool[i], mode, &mut rng) {
                b.push(r);
            }
            if rng.gen_bool(0.3) {
                b.push(render_noise(&mut rng));
            }
            i += 1;
        }
        let title = format!("Breaking: {}", world.entity(subject).canonical);
        docs.push(b.finish(DocKind::News, title, Some(subject)));
    }
    GoldCorpus { docs }
}

/// Wikia corpus: long fiction recaps dominated by emerging characters.
pub fn wikia_corpus(world: &World, n_docs: usize, seed: u64) -> GoldCorpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let fiction: Vec<usize> = world
        .facts
        .iter()
        .enumerate()
        .filter(|(_, f)| world.entity(f.subject).domain == Domain::Fiction)
        .map(|(i, _)| i)
        .collect();
    let mut docs = Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let mut b = DocBuilder::new();
        let mut pool = fiction.clone();
        pool.shuffle(&mut rng);
        let target = rng.gen_range(40..=90); // Wikia pages are long (§7.2)
        let mut i = 0;
        while b.sentences.len() < target {
            if pool.is_empty() {
                b.push(render_noise(&mut rng));
                continue;
            }
            let f = pool[i % pool.len()];
            let mode = match rng.gen_range(0..3) {
                0 => SubjectMode::Pronoun,
                1 => SubjectMode::Alias,
                _ => SubjectMode::Canonical,
            };
            if let Some(r) = render_fact(world, f, mode, &mut rng) {
                b.push(r);
            }
            if rng.gen_bool(0.35) {
                b.push(render_noise(&mut rng));
            }
            i += 1;
        }
        docs.push(b.finish(DocKind::Wikia, format!("Episode {d}"), None));
    }
    GoldCorpus { docs }
}

/// Reverb-style benchmark: standalone sentences (one per document).
pub fn reverb_corpus(world: &World, n_sentences: usize, seed: u64) -> GoldCorpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let renderable: Vec<usize> = (0..world.facts.len()).collect();
    let mut docs = Vec::with_capacity(n_sentences);
    for s in 0..n_sentences {
        let mut b = DocBuilder::new();
        let f = renderable[rng.gen_range(0..renderable.len())];
        match rng.gen_range(0..100) {
            0..=59 => {
                if let Some(r) = render_fact(world, f, SubjectMode::Canonical, &mut rng) {
                    b.push(r);
                }
            }
            60..=74 => {
                if let Some(mut r) = render_fact(world, f, SubjectMode::Alias, &mut rng) {
                    with_apposition(world, &mut r);
                    b.push(r);
                }
            }
            75..=89 => {
                let g = renderable[rng.gen_range(0..renderable.len())];
                let a = render_fact(world, f, SubjectMode::Alias, &mut rng);
                let m = render_fact(world, g, SubjectMode::Canonical, &mut rng);
                if let (Some(a), Some(m)) = (a, m) {
                    b.push(subordinate(a, m, &mut rng));
                }
            }
            _ => {
                b.push(render_noise(&mut rng));
            }
        }
        if b.sentences.is_empty() {
            b.push(render_noise(&mut rng));
        }
        docs.push(b.finish(DocKind::Reverb, format!("s{s}"), None));
    }
    GoldCorpus { docs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn wiki_corpus_shape() {
        let w = world();
        let c = wiki_corpus(&w, 5, 1);
        assert_eq!(c.docs.len(), 5);
        for d in &c.docs {
            assert!(d.kind == DocKind::Wikipedia);
            assert!(
                d.sentences.len() >= 4,
                "page too short: {}",
                d.sentences.len()
            );
            assert!(d.main_entity.is_some());
            assert!(!d.instances.is_empty());
            // every instance's sentence index is valid
            for inst in &d.instances {
                assert!(inst.sentence < d.sentences.len());
            }
            for m in &d.mentions {
                assert!(m.sentence < d.sentences.len());
            }
        }
    }

    #[test]
    fn wiki_corpus_is_deterministic() {
        let w = world();
        let a = wiki_corpus(&w, 3, 9);
        let b = wiki_corpus(&w, 3, 9);
        assert_eq!(a.docs[2].text, b.docs[2].text);
    }

    #[test]
    fn news_corpus_mentions_emerging() {
        let w = world();
        let c = news_corpus(&w, 6, 2);
        let emerging_mentions = c
            .docs
            .iter()
            .flat_map(|d| &d.mentions)
            .filter(|m| w.entity(m.entity).emerging)
            .count();
        assert!(emerging_mentions > 0, "news must mention emerging entities");
    }

    #[test]
    fn wikia_docs_are_long_and_emerging_heavy() {
        let w = world();
        let c = wikia_corpus(&w, 2, 3);
        for d in &c.docs {
            assert!(d.sentences.len() >= 40, "wikia pages are long");
        }
        let (emerging, total) = c
            .docs
            .iter()
            .flat_map(|d| &d.mentions)
            .filter(|m| !m.pronoun)
            .fold((0usize, 0usize), |(e, t), m| {
                (e + usize::from(w.entity(m.entity).emerging), t + 1)
            });
        let frac = emerging as f64 / total.max(1) as f64;
        assert!(frac > 0.4, "wikia should be emerging-heavy, got {frac:.2}");
    }

    #[test]
    fn reverb_corpus_single_sentences() {
        let w = world();
        let c = reverb_corpus(&w, 50, 4);
        assert_eq!(c.docs.len(), 50);
        for d in &c.docs {
            assert_eq!(d.sentences.len(), 1);
            assert_eq!(d.kind, DocKind::Reverb);
        }
        assert_eq!(c.n_sentences(), 50);
    }

    #[test]
    fn pronoun_mentions_exist_in_wiki() {
        let w = world();
        let c = wiki_corpus(&w, 10, 7);
        let pronouns = c
            .docs
            .iter()
            .flat_map(|d| &d.mentions)
            .filter(|m| m.pronoun)
            .count();
        assert!(pronouns > 0, "styled pages should contain pronoun subjects");
    }
}
