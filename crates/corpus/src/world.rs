//! The world model: a closed universe of entities and gold facts from
//! which all corpora are rendered.
//!
//! The world plays three roles. (1) Its non-emerging entities form the
//! entity-repository snapshot (the Yago substitute (E)). (2) Its relation
//! paraphrases extend the pattern repository (the PATTY substitute (P)).
//! (3) Its gold facts are what documents *say*, so extraction correctness
//! is decidable automatically — replacing the paper's human assessors.
//!
//! Deliberate difficulty is built in: alias ambiguity (a city and a
//! football club sharing a name, people sharing surnames), emerging
//! entities absent from the repository snapshot (news figures, fiction
//! characters), and relations whose argument types disambiguate
//! ("play for" a club vs "live in" a city).

use qkb_kb::{EntityRepository, Gender, PatternRepository};
use qkb_util::define_id;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

define_id!(WorldEntityId, "identifies an entity of the synthetic world");

/// Entity domain (controls which corpora feature it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Film/TV people and works.
    Film,
    /// Musicians, bands, albums.
    Music,
    /// Footballers, clubs, tournaments.
    Football,
    /// Politicians, parties, countries.
    Politics,
    /// Scientists, universities.
    Science,
    /// Cities, countries, venues.
    Geo,
    /// Foundations, charities, companies.
    Org,
    /// Awards and prizes.
    Award,
    /// News events and their (emerging) participants.
    News,
    /// Fiction characters (Wikia corpora; mostly emerging).
    Fiction,
}

/// One world entity.
#[derive(Clone, Debug)]
pub struct WEntity {
    /// Stable id.
    pub id: WorldEntityId,
    /// Canonical name.
    pub canonical: String,
    /// Aliases (canonical included).
    pub aliases: Vec<String>,
    /// Gender (Neutral for non-persons).
    pub gender: Gender,
    /// Type names in the standard type system.
    pub type_names: Vec<&'static str>,
    /// True if absent from the repository snapshot.
    pub emerging: bool,
    /// Domain.
    pub domain: Domain,
}

impl WEntity {
    /// True if the entity is a person(-like) entity.
    pub fn is_person(&self) -> bool {
        !matches!(self.gender, Gender::Neutral)
    }
}

/// A gold fact argument.
#[derive(Clone, Debug, PartialEq)]
pub enum GoldArg {
    /// Another world entity.
    Entity(WorldEntityId),
    /// A string literal ("$100,000", "the lyrics").
    Literal(String),
    /// A time expression surface ("September 19, 2016").
    Time(String),
}

/// One gold fact: subject, canonical relation key, further arguments.
#[derive(Clone, Debug)]
pub struct GoldFact {
    /// Subject entity.
    pub subject: WorldEntityId,
    /// Canonical relation key (must exist in the pattern repository).
    pub relation: &'static str,
    /// Arguments in canonical order.
    pub args: Vec<GoldArg>,
    /// True for "recent" facts: only expressed in news corpora and absent
    /// from any static-KB snapshot (drives the QA-Freebase failure mode).
    pub recent: bool,
}

/// World-generation configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Actors / musicians / footballers / politicians / scientists.
    pub n_people_per_domain: usize,
    /// Films (characters are derived: ~1 per film).
    pub n_films: usize,
    /// Albums.
    pub n_albums: usize,
    /// Football clubs (a third share a city's name — NED ambiguity).
    pub n_clubs: usize,
    /// Cities.
    pub n_cities: usize,
    /// Awards/prizes.
    pub n_awards: usize,
    /// Charities/foundations/companies.
    pub n_orgs: usize,
    /// Universities.
    pub n_universities: usize,
    /// News events (each brings 1–2 emerging people).
    pub n_events: usize,
    /// Fiction characters for Wikia corpora (mostly emerging).
    pub n_characters: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            n_people_per_domain: 8,
            n_films: 12,
            n_albums: 6,
            n_clubs: 6,
            n_cities: 10,
            n_awards: 6,
            n_orgs: 6,
            n_universities: 4,
            n_events: 6,
            n_characters: 10,
        }
    }
}

impl WorldConfig {
    /// The benchmark-scale configuration used by the table harnesses.
    pub fn standard() -> Self {
        Self {
            seed: 42,
            n_people_per_domain: 24,
            n_films: 40,
            n_albums: 20,
            n_clubs: 12,
            n_cities: 20,
            n_awards: 12,
            n_orgs: 12,
            n_universities: 8,
            n_events: 16,
            n_characters: 30,
        }
    }
}

/// The generated world.
pub struct World {
    /// Generation config.
    pub config: WorldConfig,
    /// All entities.
    pub entities: Vec<WEntity>,
    /// All gold facts.
    pub facts: Vec<GoldFact>,
    /// Entity repository snapshot (non-emerging entities only).
    pub repo: EntityRepository,
    /// Pattern repository (seed synsets + world paraphrases).
    pub patterns: PatternRepository,
    repo_ids: Vec<Option<qkb_kb::EntityId>>,
}

impl World {
    /// Entity record.
    pub fn entity(&self, id: WorldEntityId) -> &WEntity {
        &self.entities[id.index()]
    }

    /// Repository id of a world entity (None for emerging ones).
    pub fn repo_id(&self, id: WorldEntityId) -> Option<qkb_kb::EntityId> {
        self.repo_ids[id.index()]
    }

    /// Reverse lookup: world entity of a repository entity.
    pub fn world_of_repo(&self, repo_id: qkb_kb::EntityId) -> Option<WorldEntityId> {
        self.repo_ids
            .iter()
            .position(|&r| r == Some(repo_id))
            .map(WorldEntityId::new)
    }

    /// All facts with the given subject.
    pub fn facts_of(&self, subject: WorldEntityId) -> impl Iterator<Item = &GoldFact> {
        self.facts.iter().filter(move |f| f.subject == subject)
    }

    /// Married gold pairs (for the §7.3 spouse experiment's distant
    /// supervision, the DBpedia substitute).
    pub fn spouse_pairs(&self) -> Vec<(WorldEntityId, WorldEntityId)> {
        self.facts
            .iter()
            .filter(|f| f.relation == "married to" && !f.recent)
            .filter_map(|f| match f.args.first() {
                Some(GoldArg::Entity(o)) => Some((f.subject, *o)),
                _ => None,
            })
            .collect()
    }

    /// Entities of a domain.
    pub fn entities_of(&self, domain: Domain) -> Vec<WorldEntityId> {
        self.entities
            .iter()
            .filter(|e| e.domain == domain)
            .map(|e| e.id)
            .collect()
    }

    /// Generates the world.
    pub fn generate(config: WorldConfig) -> World {
        Builder::new(config).build()
    }
}

// ---------------------------------------------------------------------------
// Name material
// ---------------------------------------------------------------------------

const MALE_FIRST: &[&str] = &[
    "Adam", "Brian", "Carl", "Daniel", "Edgar", "Felix", "Gordon", "Henry", "Ivan", "Jonas",
    "Kevin", "Lucas", "Marcus", "Nolan", "Oscar", "Patrick", "Quentin", "Robert", "Samuel",
    "Tobias", "Victor", "Walter", "Xavier", "Martin", "Leon", "Hugo", "Oliver", "Peter", "Simon",
    "Thomas",
];
const FEMALE_FIRST: &[&str] = &[
    "Alice", "Bella", "Clara", "Diana", "Elena", "Fiona", "Grace", "Hannah", "Irene", "Julia",
    "Karen", "Laura", "Maria", "Nadia", "Olivia", "Paula", "Quinn", "Rosa", "Sofia", "Teresa",
    "Ursula", "Vera", "Wendy", "Yvonne", "Nora", "Stella", "Amelia", "Greta", "Ingrid", "Selma",
];
const SURNAMES: &[&str] = &[
    "Ashworth",
    "Brennan",
    "Calloway",
    "Draper",
    "Ellison",
    "Fairbank",
    "Garrison",
    "Hartley",
    "Ibsen",
    "Jarrett",
    "Kestrel",
    "Lockwood",
    "Marlowe",
    "Norwood",
    "Osborne",
    "Prescott",
    "Quimby",
    "Ramsey",
    "Sinclair",
    "Thackeray",
    "Underhill",
    "Vance",
    "Westbrook",
    "Yarrow",
    "Harker",
    "Penhale",
    "Redgrave",
    "Stanhope",
    "Trevelyan",
    "Winslow",
];
const CITY_NAMES: &[&str] = &[
    "Ashford",
    "Brackley",
    "Caldwell",
    "Dunmore",
    "Eastvale",
    "Farrow",
    "Glenholm",
    "Harwick",
    "Ivybridge",
    "Kelsey",
    "Larkhill",
    "Milbrook",
    "Northgate",
    "Oakhurst",
    "Pembly",
    "Quarrystone",
    "Ravensford",
    "Southmere",
    "Thornbury",
    "Wexley",
];
const COUNTRY_NAMES: &[&str] = &[
    "Valdoria", "Nortland", "Estmark", "Kareland", "Sudenia", "Westria",
];
const FILM_ADJ: &[&str] = &[
    "Silent", "Crimson", "Golden", "Hidden", "Broken", "Distant", "Endless", "Frozen", "Gilded",
    "Hollow", "Iron", "Jade",
];
const FILM_NOUN: &[&str] = &[
    "Harbor", "Empire", "Garden", "Horizon", "Island", "Journey", "Kingdom", "Lantern", "Meridian",
    "Nocturne", "Odyssey", "Paradox",
];
const ALBUM_WORDS: &[&str] = &[
    "Midnight Letters",
    "Paper Rivers",
    "Electric Dawn",
    "Glass Stations",
    "Northern Echoes",
    "Velvet Roads",
    "Amber Skies",
    "Silver Static",
    "Hollow Crowns",
    "Painted Thunder",
    "Quiet Engines",
    "Wildfire Season",
];
const BAND_WORDS: &[&str] = &[
    "The Velvet Foxes",
    "The Paper Kites",
    "Static Bloom",
    "The Night Pilots",
    "Cobalt Choir",
    "The Lantern Club",
    "Glasshouse Parade",
    "The Tin Sparrows",
];
const AWARD_FIELDS: &[&str] = &["Literature", "Cinema", "Music", "Science", "Peace", "Drama"];
const ORG_WORDS: &[&str] = &[
    "Bright Futures Foundation",
    "Clearwater Trust",
    "Open Roads Initiative",
    "Haven Relief Fund",
    "New Dawn Charity",
    "Lumen Health Alliance",
    "Blue Orchard Fund",
    "Silverline Institute",
    "Harbor Light Society",
    "Fieldstone Coalition",
    "Aurora Education Trust",
    "Evergreen Aid",
];
const UNIVERSITY_PREFIX: &[&str] = &[
    "Northgate",
    "Ravensford",
    "Thornbury",
    "Wexley",
    "Ashford",
    "Milbrook",
    "Kelsey",
    "Oakhurst",
];
const PARTY_WORDS: &[&str] = &[
    "Unity Party",
    "Progress Alliance",
    "Liberty Movement",
    "Green Accord",
    "National Forum",
    "Civic League",
];
const CHARACTER_FIRST: &[&str] = &[
    "Arden",
    "Brynn",
    "Caspian",
    "Dorian",
    "Elowen",
    "Fenric",
    "Gwendal",
    "Halric",
    "Isolde",
    "Joren",
    "Kaelith",
    "Lyra",
    "Maelor",
    "Nyssa",
    "Orin",
    "Peregrine",
    "Quillon",
    "Ravenna",
    "Soren",
    "Thalia",
];
const CHARACTER_HOUSE: &[&str] = &[
    "Vale",
    "Blackmoor",
    "Stormhold",
    "Wyrmbane",
    "Frostmere",
    "Ashenfell",
    "Duskwater",
    "Ironvale",
    "Thornfield",
    "Greywick",
];

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

struct Builder {
    config: WorldConfig,
    rng: SmallRng,
    entities: Vec<WEntity>,
    facts: Vec<GoldFact>,
}

impl Builder {
    fn new(config: WorldConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            entities: Vec::new(),
            facts: Vec::new(),
        }
    }

    fn add_entity(
        &mut self,
        canonical: String,
        aliases: Vec<String>,
        gender: Gender,
        type_names: Vec<&'static str>,
        emerging: bool,
        domain: Domain,
    ) -> WorldEntityId {
        let id = WorldEntityId::new(self.entities.len());
        let mut all = vec![canonical.clone()];
        for a in aliases {
            if !all.contains(&a) {
                all.push(a);
            }
        }
        self.entities.push(WEntity {
            id,
            canonical,
            aliases: all,
            gender,
            type_names,
            emerging,
            domain,
        });
        id
    }

    fn person_name(&mut self, gender: Gender, surname_pool: &[&str]) -> (String, Vec<String>) {
        let first = match gender {
            Gender::Female => FEMALE_FIRST[self.rng.gen_range(0..FEMALE_FIRST.len())],
            _ => MALE_FIRST[self.rng.gen_range(0..MALE_FIRST.len())],
        };
        let last = surname_pool[self.rng.gen_range(0..surname_pool.len())];
        let full = format!("{first} {last}");
        // Surname alias creates deliberate ambiguity when surnames repeat.
        (full.clone(), vec![last.to_string(), full])
    }

    fn fact(&mut self, subject: WorldEntityId, relation: &'static str, args: Vec<GoldArg>) {
        self.facts.push(GoldFact {
            subject,
            relation,
            args,
            recent: false,
        });
    }

    fn recent_fact(&mut self, subject: WorldEntityId, relation: &'static str, args: Vec<GoldArg>) {
        self.facts.push(GoldFact {
            subject,
            relation,
            args,
            recent: true,
        });
    }

    fn year(&mut self, lo: i32, hi: i32) -> String {
        format!("{}", self.rng.gen_range(lo..=hi))
    }

    fn full_date(&mut self, lo: i32, hi: i32) -> String {
        const MONTHS: &[&str] = &[
            "January",
            "February",
            "March",
            "April",
            "May",
            "June",
            "July",
            "August",
            "September",
            "October",
            "November",
            "December",
        ];
        let m = MONTHS[self.rng.gen_range(0..12)];
        let d = self.rng.gen_range(1..=28);
        let y = self.rng.gen_range(lo..=hi);
        format!("{m} {d}, {y}")
    }

    fn build(mut self) -> World {
        let n = self.config.n_people_per_domain;

        // --- geography ---
        let cities: Vec<WorldEntityId> = (0..self.config.n_cities)
            .map(|i| {
                let name = CITY_NAMES[i % CITY_NAMES.len()].to_string();
                self.add_entity(
                    name,
                    vec![],
                    Gender::Neutral,
                    vec!["CITY"],
                    false,
                    Domain::Geo,
                )
            })
            .collect();
        let countries: Vec<WorldEntityId> = COUNTRY_NAMES
            .iter()
            .map(|c| {
                self.add_entity(
                    c.to_string(),
                    vec![],
                    Gender::Neutral,
                    vec!["COUNTRY"],
                    false,
                    Domain::Geo,
                )
            })
            .collect();
        for (i, &city) in cities.clone().iter().enumerate() {
            let country = countries[i % countries.len()];
            self.fact(city, "located in", vec![GoldArg::Entity(country)]);
        }

        // --- organizations / awards / universities ---
        let orgs: Vec<WorldEntityId> = (0..self.config.n_orgs)
            .map(|i| {
                let name = ORG_WORDS[i % ORG_WORDS.len()].to_string();
                let alias = name
                    .split_whitespace()
                    .take(2)
                    .collect::<Vec<_>>()
                    .join(" ");
                self.add_entity(
                    name,
                    vec![alias],
                    Gender::Neutral,
                    vec!["FOUNDATION"],
                    false,
                    Domain::Org,
                )
            })
            .collect();
        let awards: Vec<WorldEntityId> = (0..self.config.n_awards)
            .map(|i| {
                let field = AWARD_FIELDS[i % AWARD_FIELDS.len()];
                let name = if i < AWARD_FIELDS.len() {
                    format!("National Prize in {field}")
                } else {
                    format!("Golden {} Award", FILM_NOUN[i % FILM_NOUN.len()])
                };
                self.add_entity(
                    name.clone(),
                    vec![],
                    Gender::Neutral,
                    vec!["AWARD"],
                    false,
                    Domain::Award,
                )
            })
            .collect();
        let universities: Vec<WorldEntityId> = (0..self.config.n_universities)
            .map(|i| {
                let name = format!(
                    "{} University",
                    UNIVERSITY_PREFIX[i % UNIVERSITY_PREFIX.len()]
                );
                self.add_entity(
                    name,
                    vec![],
                    Gender::Neutral,
                    vec!["UNIVERSITY"],
                    false,
                    Domain::Org,
                )
            })
            .collect();

        // --- football clubs (ambiguity: club alias = city name) ---
        let clubs: Vec<WorldEntityId> = (0..self.config.n_clubs)
            .map(|i| {
                let city_name = CITY_NAMES[i % CITY_NAMES.len()];
                let (canonical, aliases) = if i % 3 == 0 {
                    // Shares its bare name with the city: the Liverpool case.
                    (format!("{city_name} F.C."), vec![city_name.to_string()])
                } else if i % 3 == 1 {
                    (format!("{city_name} United"), vec![format!("{city_name}")])
                } else {
                    (format!("{city_name} Rovers"), vec![])
                };
                self.add_entity(
                    canonical,
                    aliases,
                    Gender::Neutral,
                    vec!["FOOTBALL_CLUB"],
                    false,
                    Domain::Football,
                )
            })
            .collect();

        // --- films, characters, albums, bands, parties ---
        let films: Vec<WorldEntityId> = (0..self.config.n_films)
            .map(|i| {
                let name = format!(
                    "The {} {}",
                    FILM_ADJ[i % FILM_ADJ.len()],
                    FILM_NOUN[(i / FILM_ADJ.len() + i) % FILM_NOUN.len()]
                );
                let short = name
                    .split_whitespace()
                    .last()
                    .expect("non-empty")
                    .to_string();
                self.add_entity(
                    name,
                    vec![short],
                    Gender::Neutral,
                    vec!["FILM"],
                    false,
                    Domain::Film,
                )
            })
            .collect();
        let film_characters: Vec<WorldEntityId> = (0..self.config.n_films.min(20))
            .map(|i| {
                let name = format!(
                    "{} {}",
                    CHARACTER_FIRST[i % CHARACTER_FIRST.len()],
                    CHARACTER_HOUSE[(i / 2) % CHARACTER_HOUSE.len()]
                );
                let gender = if i % 2 == 0 {
                    Gender::Male
                } else {
                    Gender::Female
                };
                self.add_entity(
                    name.clone(),
                    vec![name
                        .split_whitespace()
                        .next()
                        .expect("non-empty")
                        .to_string()],
                    gender,
                    vec!["CHARACTER"],
                    false,
                    Domain::Film,
                )
            })
            .collect();
        let albums: Vec<WorldEntityId> = (0..self.config.n_albums)
            .map(|i| {
                self.add_entity(
                    ALBUM_WORDS[i % ALBUM_WORDS.len()].to_string(),
                    vec![],
                    Gender::Neutral,
                    vec!["ALBUM"],
                    false,
                    Domain::Music,
                )
            })
            .collect();
        let bands: Vec<WorldEntityId> = BAND_WORDS
            .iter()
            .take((self.config.n_albums / 3).max(2))
            .map(|b| {
                self.add_entity(
                    b.to_string(),
                    vec![],
                    Gender::Neutral,
                    vec!["BAND"],
                    false,
                    Domain::Music,
                )
            })
            .collect();
        let parties: Vec<WorldEntityId> = PARTY_WORDS
            .iter()
            .map(|p| {
                self.add_entity(
                    p.to_string(),
                    vec![],
                    Gender::Neutral,
                    vec!["POLITICAL_PARTY"],
                    false,
                    Domain::Politics,
                )
            })
            .collect();

        // --- people per domain ---
        let mut actors = Vec::new();
        let mut musicians = Vec::new();
        let mut footballers = Vec::new();
        let mut politicians = Vec::new();
        let mut scientists = Vec::new();
        for i in 0..n * 5 {
            let gender = if self.rng.gen_bool(0.5) {
                Gender::Male
            } else {
                Gender::Female
            };
            // Restrict surname pools per cohort so collisions happen.
            let pool_start = (i * 7) % (SURNAMES.len() - 8);
            let (canonical, aliases) =
                self.person_name(gender, &SURNAMES[pool_start..pool_start + 8]);
            let (ty, domain, bucket): (&'static str, Domain, usize) = match i % 5 {
                0 => ("ACTOR", Domain::Film, 0),
                1 => ("MUSICAL_ARTIST", Domain::Music, 1),
                2 => ("FOOTBALLER", Domain::Football, 2),
                3 => ("POLITICIAN", Domain::Politics, 3),
                _ => ("SCIENTIST", Domain::Science, 4),
            };
            let id = self.add_entity(canonical, aliases, gender, vec![ty], false, domain);
            match bucket {
                0 => actors.push(id),
                1 => musicians.push(id),
                2 => footballers.push(id),
                3 => politicians.push(id),
                _ => scientists.push(id),
            }
        }

        // --- biography facts shared by all people ---
        let all_people: Vec<WorldEntityId> = actors
            .iter()
            .chain(&musicians)
            .chain(&footballers)
            .chain(&politicians)
            .chain(&scientists)
            .copied()
            .collect();
        for &p in &all_people {
            let city = cities[self.rng.gen_range(0..cities.len())];
            self.fact(p, "born in", vec![GoldArg::Entity(city)]);
            let date = self.full_date(1940, 1995);
            self.fact(p, "born on", vec![GoldArg::Time(date)]);
            if self.rng.gen_bool(0.5) {
                let org = orgs[self.rng.gen_range(0..orgs.len())];
                self.fact(p, "support", vec![GoldArg::Entity(org)]);
            }
            if self.rng.gen_bool(0.35) {
                let org = orgs[self.rng.gen_range(0..orgs.len())];
                let amount = format!("${},000", self.rng.gen_range(10..500));
                self.fact(
                    p,
                    "donate to",
                    vec![GoldArg::Literal(amount), GoldArg::Entity(org)],
                );
            }
            if self.rng.gen_bool(0.4) {
                let uni = universities[self.rng.gen_range(0..universities.len())];
                self.fact(p, "study at", vec![GoldArg::Entity(uni)]);
            }
        }

        // --- marriages (within the whole cohort; used by §7.3) ---
        let mut unmarried = all_people.clone();
        unmarried.shuffle(&mut self.rng);
        let n_couples = unmarried.len() / 3;
        for i in 0..n_couples {
            let a = unmarried[2 * i];
            let b = unmarried[2 * i + 1];
            self.fact(a, "married to", vec![GoldArg::Entity(b)]);
            if self.rng.gen_bool(0.3) {
                let date = self.full_date(2005, 2016);
                self.fact(
                    a,
                    "divorce from",
                    vec![GoldArg::Entity(b), GoldArg::Time(date)],
                );
            }
        }

        // --- domain facts ---
        for (i, &a) in actors.iter().enumerate() {
            let n_roles = self.rng.gen_range(1..=3);
            for _ in 0..n_roles {
                let film = films[self.rng.gen_range(0..films.len())];
                if !film_characters.is_empty() && self.rng.gen_bool(0.7) {
                    let ch = film_characters[self.rng.gen_range(0..film_characters.len())];
                    self.fact(
                        a,
                        "play in",
                        vec![GoldArg::Entity(ch), GoldArg::Entity(film)],
                    );
                } else {
                    self.fact(a, "act in", vec![GoldArg::Entity(film)]);
                }
            }
            if i % 3 == 0 {
                let aw = awards[self.rng.gen_range(0..awards.len())];
                self.fact(a, "win", vec![GoldArg::Entity(aw)]);
            }
        }
        for (i, &m) in musicians.iter().enumerate() {
            let album = albums[self.rng.gen_range(0..albums.len())];
            let y = self.year(1970, 2015);
            self.fact(m, "release", vec![GoldArg::Entity(album), GoldArg::Time(y)]);
            if i % 2 == 0 {
                let aw = awards[self.rng.gen_range(0..awards.len())];
                let date = self.full_date(1990, 2016);
                let presenter = all_people[self.rng.gen_range(0..all_people.len())];
                self.fact(
                    m,
                    "receive in from",
                    vec![
                        GoldArg::Entity(aw),
                        GoldArg::Time(date),
                        GoldArg::Entity(presenter),
                    ],
                );
            }
            if i % 3 == 0 && !bands.is_empty() {
                let band = bands[self.rng.gen_range(0..bands.len())];
                self.fact(m, "perform in", vec![GoldArg::Entity(band)]);
            }
        }
        for (i, &f) in footballers.iter().enumerate() {
            let club = clubs[self.rng.gen_range(0..clubs.len())];
            self.fact(f, "play for", vec![GoldArg::Entity(club)]);
            if i % 2 == 0 {
                let to = clubs[self.rng.gen_range(0..clubs.len())];
                let y = self.year(2000, 2016);
                self.fact(
                    f,
                    "transfer to",
                    vec![GoldArg::Entity(to), GoldArg::Time(y)],
                );
            }
            if i % 4 == 0 {
                let club2 = clubs[self.rng.gen_range(0..clubs.len())];
                self.fact(f, "score in", vec![GoldArg::Entity(club2)]);
            }
        }
        for (i, &p) in politicians.iter().enumerate() {
            let party = parties[self.rng.gen_range(0..parties.len())];
            self.fact(p, "lead", vec![GoldArg::Entity(party)]);
            if i % 2 == 0 {
                let country = countries[self.rng.gen_range(0..countries.len())];
                let y = self.year(1995, 2016);
                self.fact(
                    p,
                    "elected as",
                    vec![GoldArg::Entity(country), GoldArg::Time(y)],
                );
            }
        }
        for (i, &s) in scientists.iter().enumerate() {
            let uni = universities[self.rng.gen_range(0..universities.len())];
            self.fact(s, "teach at", vec![GoldArg::Entity(uni)]);
            if i % 2 == 0 {
                let aw = awards[self.rng.gen_range(0..awards.len())];
                let reason = format!(
                    "having revolutionized the study of {}",
                    [
                        "stellar chemistry",
                        "deep oceans",
                        "ancient languages",
                        "neural circuits"
                    ][self.rng.gen_range(0..4)]
                );
                self.fact(
                    s,
                    "win for",
                    vec![GoldArg::Entity(aw), GoldArg::Literal(reason)],
                );
            }
        }

        // --- news events with emerging people ---
        for i in 0..self.config.n_events {
            let date = self.full_date(2015, 2016);
            match i % 4 {
                0 => {
                    // Divorce filing (the Pitt/Jolie case).
                    if let Some((a, b)) = self.pick_couple() {
                        self.recent_fact(
                            a,
                            "divorce from",
                            vec![GoldArg::Entity(b), GoldArg::Time(date)],
                        );
                    }
                }
                1 => {
                    // Accusation by an emerging person.
                    let gender = if self.rng.gen_bool(0.5) {
                        Gender::Female
                    } else {
                        Gender::Male
                    };
                    let (name, aliases) = self.person_name(gender, SURNAMES);
                    let accuser =
                        self.add_entity(name, aliases, gender, vec!["PERSON"], true, Domain::News);
                    let target = all_people[self.rng.gen_range(0..all_people.len())];
                    let claim = format!(
                        "{} {}",
                        ["harassing", "defrauding", "threatening", "groping"]
                            [self.rng.gen_range(0..4)],
                        ["a colleague", "an assistant", "a passenger", "a reporter"]
                            [self.rng.gen_range(0..4)]
                    );
                    self.recent_fact(
                        accuser,
                        "accuse of",
                        vec![GoldArg::Entity(target), GoldArg::Literal(claim)],
                    );
                }
                2 => {
                    // Shooting with an emerging officer (the Scott case).
                    let (vname, valiases) = self.person_name(Gender::Male, SURNAMES);
                    let victim = self.add_entity(
                        vname,
                        valiases,
                        Gender::Male,
                        vec!["PERSON"],
                        true,
                        Domain::News,
                    );
                    let (oname, oaliases) = self.person_name(Gender::Male, SURNAMES);
                    let officer = self.add_entity(
                        oname,
                        oaliases,
                        Gender::Male,
                        vec!["PERSON"],
                        true,
                        Domain::News,
                    );
                    self.recent_fact(officer, "shoot", vec![GoldArg::Entity(victim)]);
                }
                _ => {
                    // Late-career award (the Dylan case).
                    let winner = all_people[self.rng.gen_range(0..all_people.len())];
                    let aw = awards[self.rng.gen_range(0..awards.len())];
                    let reason = format!(
                        "having created new {} within the national tradition",
                        ["poetic expressions", "musical forms", "dramatic idioms"]
                            [self.rng.gen_range(0..3)]
                    );
                    self.recent_fact(
                        winner,
                        "win for",
                        vec![GoldArg::Entity(aw), GoldArg::Literal(reason)],
                    );
                }
            }
        }

        // --- fiction characters for Wikia corpora (mostly emerging) ---
        let mut fiction: Vec<WorldEntityId> = Vec::new();
        for i in 0..self.config.n_characters {
            let name = format!(
                "{} {}",
                CHARACTER_FIRST[(i * 3 + 1) % CHARACTER_FIRST.len()],
                CHARACTER_HOUSE[(i * 5 + 3) % CHARACTER_HOUSE.len()]
            );
            let gender = if i % 2 == 0 {
                Gender::Female
            } else {
                Gender::Male
            };
            let emerging = i % 10 < 7; // ~70% out-of-repository (§7.2)
            let id = self.add_entity(
                name.clone(),
                vec![name
                    .split_whitespace()
                    .next()
                    .expect("non-empty")
                    .to_string()],
                gender,
                vec!["CHARACTER"],
                emerging,
                Domain::Fiction,
            );
            fiction.push(id);
        }
        for i in 0..fiction.len() {
            let a = fiction[i];
            let b = fiction[(i + 1) % fiction.len()];
            match i % 4 {
                0 => self.fact(a, "married to", vec![GoldArg::Entity(b)]),
                1 => self.fact(a, "defeat", vec![GoldArg::Entity(b)]),
                2 => self.fact(a, "shoot", vec![GoldArg::Entity(b)]),
                _ => {
                    let city = cities[self.rng.gen_range(0..cities.len())];
                    self.fact(a, "live in", vec![GoldArg::Entity(city)]);
                }
            }
        }

        // --- repositories ---
        let mut repo = EntityRepository::new();
        let mut repo_ids = vec![None; self.entities.len()];
        for e in &self.entities {
            if e.emerging {
                continue;
            }
            let tids: Vec<qkb_kb::TypeId> = e
                .type_names
                .iter()
                .map(|t| {
                    repo.type_system()
                        .get(t)
                        .expect("world types exist in the standard system")
                })
                .collect();
            let alias_refs: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
            let rid = repo.add_entity(&e.canonical, &alias_refs, e.gender, tids);
            repo_ids[e.id.index()] = Some(rid);
        }
        let mut patterns = PatternRepository::standard();
        crate::render::extend_patterns(&mut patterns);

        World {
            config: self.config,
            entities: self.entities,
            facts: self.facts,
            repo,
            patterns,
            repo_ids,
        }
    }

    fn pick_couple(&mut self) -> Option<(WorldEntityId, WorldEntityId)> {
        let couples: Vec<(WorldEntityId, WorldEntityId)> = self
            .facts
            .iter()
            .filter(|f| f.relation == "married to")
            .filter_map(|f| match f.args.first() {
                Some(GoldArg::Entity(o)) => Some((f.subject, *o)),
                _ => None,
            })
            .collect();
        if couples.is_empty() {
            None
        } else {
            Some(couples[self.rng.gen_range(0..couples.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w1 = World::generate(WorldConfig::default());
        let w2 = World::generate(WorldConfig::default());
        assert_eq!(w1.entities.len(), w2.entities.len());
        assert_eq!(w1.facts.len(), w2.facts.len());
        assert_eq!(w1.entities[3].canonical, w2.entities[3].canonical);
    }

    #[test]
    fn emerging_entities_absent_from_repo() {
        let w = World::generate(WorldConfig::default());
        let emerging: Vec<&WEntity> = w.entities.iter().filter(|e| e.emerging).collect();
        assert!(
            !emerging.is_empty(),
            "news/fiction must create emerging entities"
        );
        for e in emerging {
            assert!(w.repo_id(e.id).is_none());
            assert!(
                w.repo.candidates(&e.canonical).is_empty()
                    || w.entities
                        .iter()
                        .any(|o| !o.emerging && o.aliases.contains(&e.canonical)),
                "emerging canonical must not resolve unless colliding"
            );
        }
    }

    #[test]
    fn repo_contains_non_emerging_with_aliases() {
        let w = World::generate(WorldConfig::default());
        let known = w.entities.iter().find(|e| !e.emerging).expect("some");
        let rid = w.repo_id(known.id).expect("linked");
        assert_eq!(w.repo.entity(rid).canonical, known.canonical);
        assert_eq!(w.world_of_repo(rid), Some(known.id));
    }

    #[test]
    fn ambiguous_club_city_alias_exists() {
        let w = World::generate(WorldConfig::default());
        let club = w
            .entities
            .iter()
            .find(|e| e.type_names == ["FOOTBALL_CLUB"] && e.aliases.len() > 1)
            .expect("an aliased club");
        let bare = &club.aliases[1];
        let cands = w.repo.candidates(bare);
        assert!(
            cands.len() >= 2,
            "alias {bare} should be ambiguous, got {cands:?}"
        );
    }

    #[test]
    fn spouse_pairs_nonempty() {
        let w = World::generate(WorldConfig::default());
        assert!(!w.spouse_pairs().is_empty());
    }

    #[test]
    fn recent_facts_exist_for_news() {
        let w = World::generate(WorldConfig::default());
        assert!(w.facts.iter().any(|f| f.recent));
    }

    #[test]
    fn all_fact_relations_resolve_in_pattern_repo() {
        let w = World::generate(WorldConfig::default());
        for f in &w.facts {
            assert!(
                w.patterns.lookup(f.relation).is_some(),
                "relation {} missing from pattern repository",
                f.relation
            );
        }
    }

    #[test]
    fn standard_config_is_bigger() {
        let small = World::generate(WorldConfig::default());
        let big = World::generate(WorldConfig::standard());
        assert!(big.entities.len() > small.entities.len());
        assert!(big.facts.len() > small.facts.len());
    }
}
