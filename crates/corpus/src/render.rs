//! Sentence realization of gold facts.
//!
//! Every relation of the world has paraphrase templates; rendering a fact
//! produces the sentence text *plus* its gold annotations (entity mentions
//! and fact instances), so the assessor can judge any extraction from the
//! sentence. Difficulty is injected the way real text is difficult:
//! pronoun subjects, appositions after the subject, subordinate lead-ins,
//! coordinations, negated statements (which assert nothing), and filler
//! sentences with literal-argument facts.

use crate::gold::{GoldFactInstance, GoldMention, RenderedArg};
use crate::world::{GoldArg, World, WorldEntityId};
use qkb_kb::Gender;
use rand::rngs::SmallRng;
use rand::Rng;

/// One realized sentence with its gold annotations (sentence indices are
/// assigned later by the document builder).
#[derive(Clone, Debug, Default)]
pub struct RenderedSentence {
    /// Sentence text (ends with a period).
    pub text: String,
    /// Entity mentions in the sentence.
    pub mentions: Vec<GoldMention>,
    /// Fact instances the sentence asserts.
    pub instances: Vec<GoldFactInstance>,
}

/// A sentence template: `text` uses `{S}` for the subject and `{0}`,
/// `{1}`, … for arguments (`{T0}` renders a time argument with its
/// preposition). `patterns[i]` is the relation pattern the template
/// realizes *towards argument i* (the gold pattern for assessment).
pub struct Template {
    /// Format string.
    pub text: &'static str,
    /// Per-argument relation pattern.
    pub patterns: &'static [&'static str],
}

/// A relation's rendering spec.
pub struct RelationSpec {
    /// Canonical relation key (as in `GoldFact::relation`).
    pub key: &'static str,
    /// Additional paraphrase patterns to register in the pattern
    /// repository (beyond the seeded standard synsets).
    pub paraphrases: &'static [&'static str],
    /// Sentence templates.
    pub templates: &'static [Template],
}

macro_rules! tpl {
    ($text:expr, [$($p:expr),*]) => {
        Template { text: $text, patterns: &[$($p),*] }
    };
}

/// The rendering table for every world relation.
pub const RELATIONS: &[RelationSpec] = &[
    RelationSpec {
        key: "located in",
        paraphrases: &["lie in"],
        templates: &[
            tpl!("{S} is located in {0}.", ["be located in"]),
            tpl!("{S} lies in {0}.", ["lie in"]),
        ],
    },
    RelationSpec {
        key: "support",
        paraphrases: &[],
        templates: &[
            tpl!("{S} supports {0}.", ["support"]),
            tpl!("{S} has backed {0} for years.", ["back"]),
            tpl!("{S} publicly endorsed {0}.", ["endorse"]),
        ],
    },
    RelationSpec {
        key: "donate to",
        paraphrases: &["give to"],
        templates: &[
            tpl!("{S} donated {0} to {1}.", ["donate", "donate to"]),
            tpl!("{S} gave {0} to {1}.", ["give", "give to"]),
        ],
    },
    RelationSpec {
        key: "study at",
        paraphrases: &[],
        templates: &[
            tpl!("{S} studied at {0}.", ["study at"]),
            tpl!("{S} graduated from {0}.", ["graduate from"]),
        ],
    },
    RelationSpec {
        key: "married to",
        paraphrases: &["marry in"],
        templates: &[
            tpl!("{S} married {0}.", ["marry"]),
            tpl!("{S} wed {0}.", ["wed"]),
            tpl!("{S} is married to {0}.", ["be married to"]),
        ],
    },
    RelationSpec {
        key: "divorce from",
        paraphrases: &["file for on", "file for divorce from"],
        templates: &[
            tpl!("{S} divorced {0} {T1}.", ["divorce", "divorce"]),
            tpl!(
                "{S} filed for divorce from {0} {T1}.",
                ["file for divorce from", "file for divorce from"]
            ),
            tpl!("{S} split from {0} {T1}.", ["split from", "split from"]),
        ],
    },
    RelationSpec {
        key: "born in",
        paraphrases: &[],
        templates: &[
            tpl!("{S} was born in {0}.", ["bear in"]),
            tpl!("{S} grew up in {0}.", ["grow in"]),
        ],
    },
    RelationSpec {
        key: "born on",
        paraphrases: &["bear on"],
        templates: &[tpl!("{S} was born {T0}.", ["bear on"])],
    },
    RelationSpec {
        key: "play in",
        paraphrases: &["play", "portray", "star as in"],
        templates: &[
            tpl!("{S} played {0} in {1}.", ["play", "play in"]),
            tpl!("{S} starred as {0} in {1}.", ["star as", "star in"]),
            tpl!("{S} portrayed {0} in {1}.", ["portray", "portray in"]),
        ],
    },
    RelationSpec {
        key: "act in",
        paraphrases: &["act"],
        templates: &[
            tpl!("{S} acted in {0}.", ["act in"]),
            tpl!("{S} starred in {0}.", ["star in"]),
            tpl!("{S} appeared in {0}.", ["appear in"]),
        ],
    },
    RelationSpec {
        key: "win",
        paraphrases: &[],
        templates: &[
            tpl!("{S} won {0}.", ["win"]),
            tpl!("{S} received {0}.", ["receive"]),
            tpl!("{S} earned {0}.", ["earn"]),
        ],
    },
    RelationSpec {
        key: "win for",
        paraphrases: &["win for", "receive for"],
        templates: &[
            tpl!("{S} won {0} for {1}.", ["win", "win for"]),
            tpl!("{S} received {0} for {1}.", ["receive", "receive for"]),
        ],
    },
    RelationSpec {
        key: "release",
        paraphrases: &["release in", "record in"],
        templates: &[
            tpl!("{S} released {0} {T1}.", ["release", "release in"]),
            tpl!("{S} recorded {0} {T1}.", ["record", "record in"]),
        ],
    },
    RelationSpec {
        key: "receive in from",
        paraphrases: &["receive from", "receive in"],
        templates: &[
            tpl!(
                "{S} received {0} {T1} from {2}.",
                ["receive", "receive in", "receive from"]
            ),
            tpl!(
                "{S} accepted {0} {T1} from {2}.",
                ["accept", "accept in", "accept from"]
            ),
        ],
    },
    RelationSpec {
        key: "perform in",
        paraphrases: &["perform with", "sing with"],
        templates: &[
            tpl!("{S} performed with {0}.", ["perform with"]),
            tpl!("{S} sang with {0}.", ["sing with"]),
        ],
    },
    RelationSpec {
        key: "play for",
        paraphrases: &[],
        templates: &[
            tpl!("{S} plays for {0}.", ["play for"]),
            tpl!("{S} signed for {0}.", ["sign for"]),
            tpl!("{S} turned out for {0}.", ["turn for"]),
        ],
    },
    RelationSpec {
        key: "transfer to",
        paraphrases: &["move to in", "join in"],
        templates: &[
            tpl!(
                "{S} transferred to {0} {T1}.",
                ["transfer to", "transfer in"]
            ),
            tpl!("{S} moved to {0} {T1}.", ["move to", "move in"]),
            tpl!("{S} joined {0} {T1}.", ["join", "join in"]),
        ],
    },
    RelationSpec {
        key: "score in",
        paraphrases: &["score against"],
        templates: &[
            tpl!("{S} scored against {0}.", ["score against"]),
            tpl!("{S} netted against {0}.", ["net against"]),
        ],
    },
    RelationSpec {
        key: "lead",
        paraphrases: &[],
        templates: &[
            tpl!("{S} leads {0}.", ["lead"]),
            tpl!("{S} heads {0}.", ["head"]),
            tpl!("{S} chairs {0}.", ["chair"]),
        ],
    },
    RelationSpec {
        key: "elected as",
        paraphrases: &["elect in", "elected in"],
        templates: &[
            tpl!("{S} was elected in {0} {T1}.", ["elect in", "elect in"]),
            tpl!("{S} won the election in {0} {T1}.", ["win in", "win in"]),
        ],
    },
    RelationSpec {
        key: "teach at",
        paraphrases: &[],
        templates: &[
            tpl!("{S} teaches at {0}.", ["teach at"]),
            tpl!("{S} lectures at {0}.", ["lecture at"]),
        ],
    },
    RelationSpec {
        key: "accuse of",
        paraphrases: &["accuse"],
        templates: &[tpl!("{S} accused {0} of {1}.", ["accuse", "accuse of"])],
    },
    RelationSpec {
        key: "shoot",
        paraphrases: &[],
        templates: &[
            tpl!("{S} shot {0}.", ["shoot"]),
            tpl!("{S} gunned down {0}.", ["gun down"]),
        ],
    },
    RelationSpec {
        key: "defeat",
        paraphrases: &[],
        templates: &[
            tpl!("{S} defeated {0}.", ["defeat"]),
            tpl!("{S} beat {0}.", ["beat"]),
        ],
    },
    RelationSpec {
        key: "live in",
        paraphrases: &[],
        templates: &[
            tpl!("{S} lives in {0}.", ["live in"]),
            tpl!("{S} resides in {0}.", ["reside in"]),
        ],
    },
];

/// Registers the rendering paraphrases in the pattern repository so
/// canonicalization can map every rendered pattern to its synset.
pub fn extend_patterns(repo: &mut qkb_kb::PatternRepository) {
    for spec in RELATIONS {
        // Collect every pattern any template realizes, plus declared
        // paraphrases; attach them to the canonical synset.
        let mut pats: Vec<&str> = spec.paraphrases.to_vec();
        for t in spec.templates {
            pats.extend_from_slice(t.patterns);
        }
        // Passive clause extraction yields "married to"/"located in" for
        // templates declared as "be married to": register both forms.
        let stripped: Vec<&str> = pats.iter().filter_map(|p| p.strip_prefix("be ")).collect();
        pats.extend(stripped);
        match repo.lookup(spec.key) {
            Some(_) => {
                // Synset exists (seeded): register leftover paraphrases as
                // an extension synset with the same canonical name; lookup
                // keeps first-sense wins so seeded patterns are unaffected.
                let missing: Vec<&str> = pats
                    .iter()
                    .copied()
                    .filter(|p| repo.lookup(p).is_none())
                    .collect();
                if !missing.is_empty() {
                    repo.add_synset(spec.key, &missing);
                }
            }
            None => {
                repo.add_synset(spec.key, &pats);
            }
        }
    }
}

/// Finds the rendering spec of a relation key.
pub fn spec_of(key: &str) -> Option<&'static RelationSpec> {
    RELATIONS.iter().find(|s| s.key == key)
}

/// How the subject of a rendered sentence is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubjectMode {
    /// Canonical (full) name.
    Canonical,
    /// A shorter alias (surname etc.) — exercises `sameAs` string matching.
    Alias,
    /// A pronoun — exercises co-reference resolution.
    Pronoun,
}

/// Subject pronoun for a gender.
pub fn pronoun_for(g: Gender) -> &'static str {
    match g {
        Gender::Male => "he",
        Gender::Female => "she",
        _ => "it",
    }
}

/// Picks a surface form for an entity.
fn surface_for(world: &World, id: WorldEntityId, mode: SubjectMode, rng: &mut SmallRng) -> String {
    let e = world.entity(id);
    match mode {
        SubjectMode::Canonical => e.canonical.clone(),
        SubjectMode::Alias => {
            if e.aliases.len() > 1 && rng.gen_bool(0.7) {
                e.aliases[rng.gen_range(1..e.aliases.len())].clone()
            } else {
                e.canonical.clone()
            }
        }
        SubjectMode::Pronoun => pronoun_for(e.gender).to_string(),
    }
}

/// Renders an argument (with optional determiner for org-like names).
fn arg_surface(
    world: &World,
    arg: &GoldArg,
    rng: &mut SmallRng,
) -> (String, Option<WorldEntityId>) {
    match arg {
        GoldArg::Entity(id) => {
            let e = world.entity(*id);
            let s = if e.aliases.len() > 1 && rng.gen_bool(0.3) {
                e.aliases[rng.gen_range(1..e.aliases.len())].clone()
            } else {
                e.canonical.clone()
            };
            // Organizations commonly appear with "the".
            let with_det = if e.type_names.contains(&"FOUNDATION") && rng.gen_bool(0.5) {
                format!("the {s}")
            } else {
                s
            };
            (with_det, Some(*id))
        }
        GoldArg::Literal(s) => (s.clone(), None),
        GoldArg::Time(t) => (t.clone(), None),
    }
}

/// Time preposition: "on" for full dates, "in" for years/months.
fn time_prep(t: &str) -> &'static str {
    if t.contains(',') {
        "on"
    } else {
        "in"
    }
}

/// Renders one fact into a sentence (simple style).
pub fn render_fact(
    world: &World,
    fact_idx: usize,
    mode: SubjectMode,
    rng: &mut SmallRng,
) -> Option<RenderedSentence> {
    let fact = &world.facts[fact_idx];
    let spec = spec_of(fact.relation)?;
    let tpl = &spec.templates[rng.gen_range(0..spec.templates.len())];
    realize(world, fact_idx, tpl, mode, rng)
}

/// Renders the template into text + gold annotations.
fn realize(
    world: &World,
    fact_idx: usize,
    tpl: &Template,
    mode: SubjectMode,
    rng: &mut SmallRng,
) -> Option<RenderedSentence> {
    let fact = &world.facts[fact_idx];
    if tpl.patterns.len() < fact.args.len() {
        return None;
    }
    let subject_surface = surface_for(world, fact.subject, mode, rng);
    let mut mentions = Vec::new();
    mentions.push(GoldMention {
        sentence: 0,
        phrase: subject_surface.clone(),
        entity: fact.subject,
        pronoun: mode == SubjectMode::Pronoun,
    });

    let mut text = tpl.text.replace("{S}", &subject_surface);
    let mut rendered_args = Vec::with_capacity(fact.args.len());
    for (i, arg) in fact.args.iter().enumerate() {
        let (surface, ent) = arg_surface(world, arg, rng);
        let plain_slot = format!("{{{i}}}");
        let time_slot = format!("{{T{i}}}");
        if text.contains(&time_slot) {
            let prep = time_prep(&surface);
            text = text.replace(&time_slot, &format!("{prep} {surface}"));
        } else {
            text = text.replace(&plain_slot, &surface);
        }
        if let Some(e) = ent {
            mentions.push(GoldMention {
                sentence: 0,
                phrase: surface.clone(),
                entity: e,
                pronoun: false,
            });
        }
        rendered_args.push(RenderedArg {
            arg: arg.clone(),
            surface,
            pattern: tpl.patterns[i].to_string(),
        });
    }
    // Unfilled slots mean template/fact arity mismatch.
    if text.contains('{') {
        return None;
    }
    let instance = GoldFactInstance {
        sentence: 0,
        fact_idx,
        subject: fact.subject,
        subject_surface,
        relation: fact.relation.to_string(),
        args: rendered_args,
        negated: false,
    };
    Some(RenderedSentence {
        text,
        mentions,
        instances: vec![instance],
    })
}

/// Renders a *negated* version of a fact — the sentence asserts nothing,
/// so it carries a negated instance which the assessor treats as
/// non-supporting (extractors that ignore negation lose precision here).
pub fn render_negated(
    world: &World,
    fact_idx: usize,
    rng: &mut SmallRng,
) -> Option<RenderedSentence> {
    let mut s = render_fact(world, fact_idx, SubjectMode::Canonical, rng)?;
    // Negate the verb: crude but effective — "X married Y." ->
    // "X never married Y."
    let fact = &world.facts[fact_idx];
    let subj = world.entity(fact.subject);
    let surface = s
        .mentions
        .first()
        .map(|m| m.phrase.clone())
        .unwrap_or_else(|| subj.canonical.clone());
    s.text = s.text.replacen(&surface, &format!("{surface} never"), 1);
    for inst in &mut s.instances {
        inst.negated = true;
    }
    Some(s)
}

/// Appends an apposition after the subject: "X, a famous actor, …".
pub fn with_apposition(world: &World, s: &mut RenderedSentence) {
    let Some(first) = s.mentions.first() else {
        return;
    };
    if first.pronoun {
        return;
    }
    let e = world.entity(first.entity);
    let role = match e.type_names.first().copied() {
        Some("ACTOR") => "a famous actor",
        Some("MUSICAL_ARTIST") => "a popular singer",
        Some("FOOTBALLER") => "a professional footballer",
        Some("POLITICIAN") => "a prominent politician",
        Some("SCIENTIST") => "a renowned scientist",
        Some("CHARACTER") => "a beloved character",
        _ => "a well-known figure",
    };
    let phrase = &first.phrase;
    if let Some(pos) = s.text.find(phrase.as_str()) {
        let insert_at = pos + phrase.len();
        s.text.insert_str(insert_at, &format!(", {role},"));
    }
}

/// Joins two rendered sentences into a coordination sharing discourse:
/// "A … and B …" (second clause subject becomes a pronoun when genders
/// allow and the subjects are the same entity).
pub fn coordinate(
    world: &World,
    first: RenderedSentence,
    second: RenderedSentence,
) -> RenderedSentence {
    let mut text1 = first.text.trim_end_matches('.').to_string();
    let mut second_text = second.text.trim_end_matches('.').to_string();
    // Same subject? use a pronoun in the second conjunct.
    let mut second_mentions = second.mentions.clone();
    if let (Some(m1), Some(m2)) = (first.mentions.first(), second.mentions.first()) {
        if m1.entity == m2.entity && !m2.pronoun {
            let pron = pronoun_for(world.entity(m2.entity).gender);
            if second_text.starts_with(&m2.phrase) {
                second_text = format!("{pron}{}", &second_text[m2.phrase.len()..]);
                second_mentions[0].phrase = pron.to_string();
                second_mentions[0].pronoun = true;
            }
        }
    }
    text1.push_str(" and ");
    text1.push_str(&second_text);
    text1.push('.');
    let mut mentions = first.mentions;
    mentions.extend(second_mentions);
    let mut instances = first.instances;
    instances.extend(second.instances);
    RenderedSentence {
        text: text1,
        mentions,
        instances,
    }
}

/// Prefixes a subordinate lead-in: "After A …, B …." Both facts are gold.
pub fn subordinate(
    lead: RenderedSentence,
    main: RenderedSentence,
    rng: &mut SmallRng,
) -> RenderedSentence {
    let conj = ["After", "While", "Although", "Because"][rng.gen_range(0..4)];
    let lead_text = lead.text.trim_end_matches('.').to_string();
    let main_text = main.text.clone();
    let text = format!("{conj} {}, {}", decapitalize(&lead_text), main_text);
    let mut mentions = lead.mentions;
    mentions.extend(main.mentions);
    let mut instances = lead.instances;
    instances.extend(main.instances);
    RenderedSentence {
        text,
        mentions,
        instances,
    }
}

fn decapitalize(s: &str) -> String {
    // Only decapitalize if the first word is not a proper name — here the
    // lead always starts with a name or pronoun, so keep as is except for
    // pronouns.
    if s.starts_with("He ") || s.starts_with("She ") || s.starts_with("It ") {
        let mut c = s.chars();
        match c.next() {
            Some(f) => f.to_lowercase().chain(c).collect(),
            None => String::new(),
        }
    } else {
        s.to_string()
    }
}

/// Filler sentences: assert only literal-argument facts, so extractions
/// from them are assessable (correct if they match, wrong if they
/// hallucinate structure).
const NOISE: &[(&str, &str, &str, &str)] = &[
    // (subject, verb pattern, object, full text)
    (
        "The audience",
        "cheer",
        "the performance",
        "The audience cheered the performance.",
    ),
    (
        "Critics",
        "praise",
        "the performance",
        "Critics praised the performance.",
    ),
    (
        "The fans",
        "celebrate",
        "the victory",
        "The fans celebrated the victory.",
    ),
    (
        "The committee",
        "announce",
        "the decision",
        "The committee announced the decision.",
    ),
    (
        "Reporters",
        "attend",
        "the ceremony",
        "Reporters attended the ceremony.",
    ),
    (
        "The crowd",
        "fill",
        "the stadium",
        "The crowd filled the stadium.",
    ),
    (
        "The jury",
        "review",
        "the nominations",
        "The jury reviewed the nominations.",
    ),
    (
        "The newspaper",
        "publish",
        "the interview",
        "The newspaper published the interview.",
    ),
];

/// Renders a filler sentence with gold literal instances.
pub fn render_noise(rng: &mut SmallRng) -> RenderedSentence {
    let (subj, pattern, obj, text) = NOISE[rng.gen_range(0..NOISE.len())];
    RenderedSentence {
        text: text.to_string(),
        mentions: Vec::new(),
        instances: vec![GoldFactInstance {
            sentence: 0,
            fact_idx: usize::MAX,
            subject: WorldEntityId::new(u32::MAX as usize),
            subject_surface: subj.to_string(),
            relation: String::new(),
            args: vec![RenderedArg {
                arg: GoldArg::Literal(obj.to_string()),
                surface: obj.to_string(),
                pattern: pattern.to_string(),
            }],
            negated: false,
        }],
    }
}

/// Lead sentence of an entity page: "X is a famous actor." (an SVC gold
/// instance with a literal complement).
pub fn render_lead(world: &World, id: WorldEntityId) -> RenderedSentence {
    let e = world.entity(id);
    let role = match e.type_names.first().copied() {
        Some("ACTOR") => "an American actor",
        Some("MUSICAL_ARTIST") => "a popular singer",
        Some("FOOTBALLER") => "a professional footballer",
        Some("POLITICIAN") => "a prominent politician",
        Some("SCIENTIST") => "a renowned scientist",
        Some("CHARACTER") => "a fictional character",
        Some("FOOTBALL_CLUB") => "a professional football club",
        Some("CITY") => "a large city",
        Some("FOUNDATION") => "a charitable foundation",
        Some("FILM") => "a feature film",
        Some("ALBUM") => "a studio album",
        Some("AWARD") => "a prestigious award",
        Some("UNIVERSITY") => "a research university",
        Some("BAND") => "a touring band",
        Some("POLITICAL_PARTY") => "a political party",
        Some("COUNTRY") => "a sovereign country",
        _ => "a notable subject",
    };
    RenderedSentence {
        text: format!("{} is {role}.", e.canonical),
        mentions: vec![GoldMention {
            sentence: 0,
            phrase: e.canonical.clone(),
            entity: id,
            pronoun: false,
        }],
        instances: vec![GoldFactInstance {
            sentence: 0,
            fact_idx: usize::MAX,
            subject: id,
            subject_surface: e.canonical.clone(),
            relation: String::new(),
            args: vec![RenderedArg {
                arg: GoldArg::Literal(role.to_string()),
                surface: role.to_string(),
                pattern: "be".to_string(),
            }],
            negated: false,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    fn setup() -> (World, SmallRng) {
        (
            World::generate(WorldConfig::default()),
            SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn every_relation_with_facts_renders() {
        let (w, mut rng) = setup();
        for (i, f) in w.facts.iter().enumerate() {
            let r = render_fact(&w, i, SubjectMode::Canonical, &mut rng);
            assert!(
                r.is_some(),
                "relation {} (arity {}) failed to render",
                f.relation,
                f.args.len()
            );
            let r = r.expect("checked");
            assert!(!r.text.contains('{'), "unfilled slot in: {}", r.text);
            assert!(r.text.ends_with('.'));
            assert_eq!(r.instances.len(), 1);
        }
    }

    #[test]
    fn pronoun_mode_renders_pronoun_mention() {
        let (w, mut rng) = setup();
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "support" && w.entity(f.subject).gender == Gender::Female)
            .or_else(|| w.facts.iter().position(|f| f.relation == "support"))
            .expect("a support fact");
        let r = render_fact(&w, idx, SubjectMode::Pronoun, &mut rng).expect("renders");
        assert!(r.mentions[0].pronoun);
        assert!(["he", "she", "it"].contains(&r.mentions[0].phrase.as_str()));
        assert!(r.text.starts_with(&r.mentions[0].phrase));
    }

    #[test]
    fn negated_rendering_marks_instances() {
        let (w, mut rng) = setup();
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "married to")
            .expect("a marriage");
        let r = render_negated(&w, idx, &mut rng).expect("renders");
        assert!(r.text.contains("never"), "got: {}", r.text);
        assert!(r.instances[0].negated);
    }

    #[test]
    fn apposition_inserted_after_subject() {
        let (w, mut rng) = setup();
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in")
            .expect("fact");
        let mut r = render_fact(&w, idx, SubjectMode::Canonical, &mut rng).expect("renders");
        with_apposition(&w, &mut r);
        assert!(r.text.contains(", a "), "got: {}", r.text);
    }

    #[test]
    fn coordination_shares_subject_as_pronoun() {
        let (w, mut rng) = setup();
        // find two facts with the same subject
        let mut by_subject = std::collections::HashMap::new();
        let mut pair = None;
        for (i, f) in w.facts.iter().enumerate() {
            if let Some(&j) = by_subject.get(&f.subject) {
                pair = Some((j, i));
                break;
            }
            by_subject.insert(f.subject, i);
        }
        let (i, j) = pair.expect("shared-subject facts exist");
        let a = render_fact(&w, i, SubjectMode::Canonical, &mut rng).expect("renders");
        let b = render_fact(&w, j, SubjectMode::Canonical, &mut rng).expect("renders");
        let c = coordinate(&w, a, b);
        assert!(c.text.contains(" and "));
        assert_eq!(c.instances.len(), 2);
        assert!(
            c.mentions.iter().skip(1).any(|m| m.pronoun),
            "second conjunct subject should be a pronoun: {}",
            c.text
        );
    }

    #[test]
    fn subordinate_prefix_keeps_both_instances() {
        let (w, mut rng) = setup();
        let a = render_fact(&w, 0, SubjectMode::Canonical, &mut rng).expect("renders");
        let b = render_fact(&w, 1, SubjectMode::Canonical, &mut rng).expect("renders");
        let s = subordinate(a, b, &mut rng);
        assert_eq!(s.instances.len(), 2);
        assert!(s.text.contains(", "));
    }

    #[test]
    fn noise_and_lead_have_gold() {
        let (w, mut rng) = setup();
        let n = render_noise(&mut rng);
        assert_eq!(n.instances.len(), 1);
        assert!(n.instances[0].relation.is_empty());
        let lead = render_lead(&w, WorldEntityId::new(0));
        assert_eq!(lead.instances.len(), 1);
        assert!(lead.text.contains(" is "));
    }

    #[test]
    fn extend_patterns_registers_template_patterns() {
        let (w, _) = setup();
        // every template pattern must resolve to the canonical synset or an
        // extension synset with the same canonical name
        for spec in RELATIONS {
            for t in spec.templates {
                for p in t.patterns {
                    let sid = w.patterns.lookup(p);
                    assert!(sid.is_some(), "pattern {p} not registered");
                }
            }
        }
    }
}
