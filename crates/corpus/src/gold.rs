//! Gold annotations and the automatic assessor.
//!
//! The paper's precision numbers come from two human assessors judging
//! sampled extractions against the source sentence (§7.1). Because our
//! corpora are *rendered from* gold facts, each sentence carries exactly
//! what it asserts, and assessment is decidable: an extraction is correct
//! iff some non-negated gold instance of its sentence matches its subject,
//! relation pattern and arguments.

use crate::docgen::GoldDoc;
use crate::world::{GoldArg, World, WorldEntityId};
use qkb_openie::Extraction;
use qkb_util::text::{is_token_prefix, is_token_suffix, normalize};

/// One gold entity mention.
#[derive(Clone, Debug)]
pub struct GoldMention {
    /// Sentence index within the document.
    pub sentence: usize,
    /// Surface phrase as rendered.
    pub phrase: String,
    /// The world entity it denotes.
    pub entity: WorldEntityId,
    /// True if the mention is a pronoun.
    pub pronoun: bool,
}

/// One rendered argument of a gold fact instance.
#[derive(Clone, Debug)]
pub struct RenderedArg {
    /// The underlying gold argument.
    pub arg: GoldArg,
    /// The surface string used in the sentence.
    pub surface: String,
    /// The relation pattern the sentence realizes towards this argument
    /// ("play in", "donate to").
    pub pattern: String,
}

/// One gold fact instance: what a specific sentence asserts.
#[derive(Clone, Debug)]
pub struct GoldFactInstance {
    /// Sentence index within the document.
    pub sentence: usize,
    /// Index into `World::facts` (`usize::MAX` for filler instances).
    pub fact_idx: usize,
    /// Subject entity (sentinel for filler instances).
    pub subject: WorldEntityId,
    /// Subject surface as rendered.
    pub subject_surface: String,
    /// Canonical relation key (empty for filler instances).
    pub relation: String,
    /// Rendered arguments.
    pub args: Vec<RenderedArg>,
    /// True if the sentence *negates* the fact (asserts nothing).
    pub negated: bool,
}

impl GoldFactInstance {
    /// True for filler (noise/lead) instances without a world fact.
    pub fn is_filler(&self) -> bool {
        self.fact_idx == usize::MAX
    }
}

/// Strips leading determiners for surface comparison.
fn strip_det(s: &str) -> String {
    let n = normalize(s);
    for det in ["the ", "a ", "an ", "his ", "her ", "its ", "their "] {
        if let Some(rest) = n.strip_prefix(det) {
            return rest.to_string();
        }
    }
    n
}

/// Token-level contiguous containment ("Pearl Foundation" within
/// "the Daniel Pearl Foundation") — substring containment would let "he"
/// match "she".
fn contains_tokens(haystack: &str, needle: &str) -> bool {
    let h: Vec<&str> = haystack.split(' ').collect();
    let n: Vec<&str> = needle.split(' ').collect();
    if n.is_empty() || n.len() > h.len() {
        return false;
    }
    h.windows(n.len()).any(|w| w == n.as_slice())
}

/// Loose surface equality: equal after determiner stripping, token-suffix
/// either way, or token-level containment (for literals and trimmed
/// arguments).
pub fn surface_match(a: &str, b: &str) -> bool {
    let (na, nb) = (strip_det(a), strip_det(b));
    if na.is_empty() || nb.is_empty() {
        return false;
    }
    na == nb
        || is_token_suffix(&na, &nb)
        || is_token_suffix(&nb, &na)
        || contains_tokens(&na, &nb)
        || contains_tokens(&nb, &na)
}

/// The automatic assessor.
pub struct Assessor<'w> {
    world: &'w World,
}

impl<'w> Assessor<'w> {
    /// An assessor over a world.
    pub fn new(world: &'w World) -> Self {
        Self { world }
    }

    /// The world under assessment.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Judges one Open-IE-style extraction against the document gold.
    pub fn extraction_correct(&self, doc: &GoldDoc, ex: &Extraction) -> bool {
        self.matching_instance(doc, ex).is_some()
    }

    /// Judges a *canonicalized* extraction: surfaces must match a gold
    /// instance AND every linked slot must resolve to the gold entity
    /// (Table 3 judges QKBfly's canonicalized facts, where a wrong
    /// disambiguation — the city instead of the club — is an error even
    /// when the rendered name coincides).
    pub fn extraction_correct_linked(
        &self,
        doc: &GoldDoc,
        ex: &Extraction,
        slot_entities: &[Option<qkb_kb::EntityId>],
    ) -> bool {
        let Some(inst) = self.matching_instance(doc, ex) else {
            return false;
        };
        // Subject link check.
        if let Some(Some(linked)) = slot_entities.first() {
            if !inst.is_filler() && self.world.repo_id(inst.subject) != Some(*linked) {
                return false;
            }
        }
        // Argument link checks: each linked arg must correspond to a gold
        // entity arg with the same repository id.
        for (i, link) in slot_entities.iter().enumerate().skip(1) {
            let Some(linked) = link else { continue };
            let Some(extracted_surface) = ex.args.get(i - 1) else {
                continue;
            };
            // Find the gold argument this surface matched.
            let gold_ok = inst.args.iter().any(|g| {
                if !self.arg_matches(extracted_surface, g) {
                    return false;
                }
                match &g.arg {
                    GoldArg::Entity(wid) => self.world.repo_id(*wid) == Some(*linked),
                    _ => false,
                }
            });
            if !gold_ok {
                return false;
            }
        }
        true
    }

    /// Finds the gold instance supporting an extraction, if any.
    pub fn matching_instance<'d>(
        &self,
        doc: &'d GoldDoc,
        ex: &Extraction,
    ) -> Option<&'d GoldFactInstance> {
        doc.instances
            .iter()
            .filter(|inst| inst.sentence == ex.sentence && !inst.negated)
            .find(|inst| self.instance_supports(doc, inst, ex))
    }

    fn instance_supports(&self, doc: &GoldDoc, inst: &GoldFactInstance, ex: &Extraction) -> bool {
        if !self.subject_matches(doc, inst, &ex.subject) {
            return false;
        }
        // Every extracted argument must match a distinct gold argument,
        // and at least one matched argument's pattern must be compatible
        // with the extracted relation.
        let mut used = vec![false; inst.args.len()];
        let mut any_pattern_ok = false;
        for earg in &ex.args {
            let mut matched = false;
            for (i, garg) in inst.args.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if self.arg_matches(earg, garg) {
                    used[i] = true;
                    matched = true;
                    if self.pattern_compatible(&ex.relation, &garg.pattern, &inst.relation) {
                        any_pattern_ok = true;
                    }
                    break;
                }
            }
            if !matched {
                return false;
            }
        }
        any_pattern_ok && !ex.args.is_empty()
    }

    fn subject_matches(&self, doc: &GoldDoc, inst: &GoldFactInstance, subject: &str) -> bool {
        if surface_match(subject, &inst.subject_surface) {
            return true;
        }
        let ns = normalize(subject);
        // Pronoun subject: accept iff the gold marks this pronoun as
        // referring to the instance subject in the same sentence (human
        // assessors resolve pronouns from context).
        if matches!(ns.as_str(), "he" | "she" | "it" | "they") {
            return doc.mentions.iter().any(|m| {
                m.sentence == inst.sentence
                    && m.pronoun
                    && m.entity == inst.subject
                    && normalize(&m.phrase) == ns
            });
        }
        // Alias of the subject entity (canonicalized extractions).
        if !inst.is_filler() {
            let e = self.world.entity(inst.subject);
            if e.aliases.iter().any(|a| surface_match(subject, a)) {
                return true;
            }
        }
        false
    }

    fn arg_matches(&self, extracted: &str, gold: &RenderedArg) -> bool {
        if surface_match(extracted, &gold.surface) {
            return true;
        }
        match &gold.arg {
            GoldArg::Entity(id) => {
                let e = self.world.entity(*id);
                e.aliases.iter().any(|a| surface_match(extracted, a))
            }
            GoldArg::Literal(l) => surface_match(extracted, l),
            GoldArg::Time(t) => {
                // Accept if the extracted span contains the year.
                let year = t
                    .split(|c: char| !c.is_ascii_digit())
                    .find(|tok| tok.len() == 4);
                match year {
                    Some(y) => normalize(extracted).contains(y),
                    None => surface_match(extracted, t),
                }
            }
        }
    }

    /// Pattern compatibility: same synset, same canonical relation, or the
    /// same head verb lemma (human assessors accept "played" for a
    /// play-in fact).
    fn pattern_compatible(&self, extracted: &str, gold_pattern: &str, canonical: &str) -> bool {
        let pats = &self.world.patterns;
        if let (Some(a), Some(b)) = (pats.lookup(extracted), pats.lookup(gold_pattern)) {
            if a == b {
                return true;
            }
            // Extension synsets share the canonical name.
            if pats.canonical(a) == pats.canonical(b) {
                return true;
            }
        }
        if !canonical.is_empty() {
            if let (Some(a), Some(c)) = (pats.lookup(extracted), pats.lookup(canonical)) {
                if a == c || pats.canonical(a) == pats.canonical(c) {
                    return true;
                }
            }
        }
        let head = |s: &str| {
            let mut it = s.split_whitespace();
            match it.next() {
                Some("be") => it.next().unwrap_or("be").to_string(),
                Some(w) => w.to_string(),
                None => String::new(),
            }
        };
        !head(extracted).is_empty() && head(extracted) == head(gold_pattern)
    }

    /// Judges an entity link (Table 4): was `phrase` in `sentence` of the
    /// document correctly linked to repository entity `target`?
    pub fn link_correct(
        &self,
        doc: &GoldDoc,
        sentence: usize,
        phrase: &str,
        target: qkb_kb::EntityId,
    ) -> bool {
        let Some(gold_world) = self.gold_entity_of(doc, sentence, phrase) else {
            return false;
        };
        self.world.repo_id(gold_world) == Some(target)
    }

    /// The gold entity a phrase denotes in a sentence, if annotated.
    pub fn gold_entity_of(
        &self,
        doc: &GoldDoc,
        sentence: usize,
        phrase: &str,
    ) -> Option<WorldEntityId> {
        let np = normalize(phrase);
        doc.mentions
            .iter()
            .filter(|m| m.sentence == sentence)
            .find(|m| {
                let nm = normalize(&m.phrase);
                nm == np
                    || is_token_suffix(&np, &nm)
                    || is_token_suffix(&nm, &np)
                    || is_token_prefix(&np, &nm)
                    || is_token_prefix(&nm, &np)
            })
            .map(|m| m.entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::{DocKind, GoldDoc};
    use crate::render::{render_fact, SubjectMode};
    use crate::world::{World, WorldConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn doc_from(world: &World, fact_idx: usize, mode: SubjectMode) -> GoldDoc {
        let mut rng = SmallRng::seed_from_u64(5);
        let r = render_fact(world, fact_idx, mode, &mut rng).expect("renders");
        GoldDoc {
            kind: DocKind::Wikipedia,
            title: "t".into(),
            main_entity: None,
            sentences: vec![r.text.clone()],
            text: r.text,
            mentions: r.mentions,
            instances: r.instances,
        }
    }

    fn extraction(sentence: usize, s: &str, r: &str, args: &[&str]) -> Extraction {
        Extraction {
            sentence,
            subject: s.to_string(),
            subject_head: 0,
            relation: r.to_string(),
            args: args.iter().map(|a| a.to_string()).collect(),
            arg_heads: args.iter().map(|_| 0).collect(),
            confidence: 0.9,
        }
    }

    #[test]
    fn correct_extraction_accepted() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in")
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Canonical);
        let inst = &doc.instances[0];
        let ex = extraction(
            0,
            &inst.subject_surface,
            &inst.args[0].pattern,
            &[&inst.args[0].surface],
        );
        let a = Assessor::new(&w);
        assert!(a.extraction_correct(&doc, &ex));
    }

    #[test]
    fn wrong_argument_rejected() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in")
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Canonical);
        let inst = &doc.instances[0];
        let ex = extraction(0, &inst.subject_surface, &inst.args[0].pattern, &["Xyzzy"]);
        let a = Assessor::new(&w);
        assert!(!a.extraction_correct(&doc, &ex));
    }

    #[test]
    fn wrong_relation_rejected() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in")
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Canonical);
        let inst = &doc.instances[0];
        let ex = extraction(0, &inst.subject_surface, "marry", &[&inst.args[0].surface]);
        let a = Assessor::new(&w);
        assert!(!a.extraction_correct(&doc, &ex));
    }

    #[test]
    fn pronoun_subject_resolved_via_gold_mentions() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "support")
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Pronoun);
        let inst = &doc.instances[0];
        let pron = &doc.mentions[0].phrase;
        let ex = extraction(0, pron, "support", &[&inst.args[0].surface]);
        let a = Assessor::new(&w);
        assert!(a.extraction_correct(&doc, &ex));
        // A different pronoun must not match.
        let other = if pron == "he" { "she" } else { "he" };
        let ex2 = extraction(0, other, "support", &[&inst.args[0].surface]);
        assert!(!a.extraction_correct(&doc, &ex2));
    }

    #[test]
    fn negated_instance_supports_nothing() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "married to")
            .expect("fact");
        let mut rng = SmallRng::seed_from_u64(5);
        let r = crate::render::render_negated(&w, idx, &mut rng).expect("renders");
        let doc = GoldDoc {
            kind: DocKind::Wikipedia,
            title: "t".into(),
            main_entity: None,
            sentences: vec![r.text.clone()],
            text: r.text,
            mentions: r.mentions,
            instances: r.instances,
        };
        let inst = &doc.instances[0];
        let ex = extraction(0, &inst.subject_surface, "marry", &[&inst.args[0].surface]);
        let a = Assessor::new(&w);
        assert!(!a.extraction_correct(&doc, &ex));
    }

    #[test]
    fn alias_subject_accepted() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in" && w.entity(f.subject).aliases.len() > 1)
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Canonical);
        let inst = &doc.instances[0];
        let alias = w.entity(inst.subject).aliases[1].clone();
        let ex = extraction(0, &alias, "bear in", &[&inst.args[0].surface]);
        let a = Assessor::new(&w);
        assert!(a.extraction_correct(&doc, &ex));
    }

    #[test]
    fn link_assessment_uses_gold_mentions() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "born in" && w.repo_id(f.subject).is_some())
            .expect("fact");
        let doc = doc_from(&w, idx, SubjectMode::Canonical);
        let inst = &doc.instances[0];
        let a = Assessor::new(&w);
        let correct = w.repo_id(inst.subject).expect("linked");
        assert!(a.link_correct(&doc, 0, &inst.subject_surface, correct));
        // Linking to some other entity is wrong.
        let other = w
            .entities
            .iter()
            .filter_map(|e| w.repo_id(e.id))
            .find(|&r| r != correct)
            .expect("another entity");
        assert!(!a.link_correct(&doc, 0, &inst.subject_surface, other));
    }

    #[test]
    fn surface_match_rules() {
        assert!(surface_match("the ONE Campaign", "ONE Campaign"));
        assert!(surface_match("Pitt", "Brad Pitt"));
        assert!(surface_match("Brad Pitt", "Pitt"));
        assert!(!surface_match("Jolie", "Pitt"));
        assert!(!surface_match("", "Pitt"));
    }
}
