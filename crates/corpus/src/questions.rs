//! Question generation: the WebQuestions-like training set (Appendix B)
//! and the GoogleTrendsQuestions-like test set (§7.4).
//!
//! Trends questions target *recent* facts — events that exist only in the
//! news corpus and are absent from any static KB snapshot. This is the
//! property that makes the paper's QA-Freebase baseline collapse (0.096
//! F1) and rewards on-the-fly construction. A subset of questions needs
//! ternary facts ("Who plays X in Y?"), which separates QKBfly from its
//! triples-only variant.

use crate::world::{Domain, GoldArg, World, WorldEntityId};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// One benchmark question with its gold answers.
#[derive(Clone, Debug)]
pub struct Question {
    /// Natural-language question text.
    pub text: String,
    /// Entities mentioned in the question (for retrieval).
    pub entities: Vec<WorldEntityId>,
    /// Gold answers: each answer is a set of acceptable surfaces.
    pub gold: Vec<Vec<String>>,
    /// Expected coarse answer types ("PERSON", "LOCATION", ...).
    pub expected_types: Vec<&'static str>,
    /// True if answering requires a higher-arity fact.
    pub needs_ternary: bool,
    /// True if the supporting fact is recent (news-only).
    pub about_recent: bool,
}

/// Acceptable surfaces of an entity answer (all aliases + canonical).
fn entity_answer(world: &World, id: WorldEntityId) -> Vec<String> {
    world.entity(id).aliases.clone()
}

/// Builds a question from a fact, if a template exists for its relation.
fn question_for_fact(world: &World, fact_idx: usize, rng: &mut SmallRng) -> Option<Question> {
    let f = &world.facts[fact_idx];
    let subj = world.entity(f.subject);
    let sname = &subj.canonical;
    let q = |text: String,
             entities: Vec<WorldEntityId>,
             gold: Vec<Vec<String>>,
             expected_types: Vec<&'static str>,
             needs_ternary: bool| {
        Some(Question {
            text,
            entities,
            gold,
            expected_types,
            needs_ternary,
            about_recent: f.recent,
        })
    };
    match (f.relation, f.args.as_slice()) {
        ("born in", [GoldArg::Entity(city)]) => q(
            format!("Where was {sname} born?"),
            vec![f.subject],
            vec![entity_answer(world, *city)],
            vec!["LOCATION"],
            false,
        ),
        ("married to", [GoldArg::Entity(spouse)]) => q(
            format!("Who did {sname} marry?"),
            vec![f.subject],
            vec![entity_answer(world, *spouse)],
            vec!["PERSON"],
            false,
        ),
        ("divorce from", [GoldArg::Entity(spouse), ..]) => {
            if rng.gen_bool(0.5) {
                q(
                    format!("Who did {sname} divorce?"),
                    vec![f.subject],
                    vec![entity_answer(world, *spouse)],
                    vec!["PERSON"],
                    false,
                )
            } else if let Some(GoldArg::Time(t)) = f.args.get(1) {
                q(
                    format!("When did {sname} file for divorce?"),
                    vec![f.subject],
                    vec![vec![t.clone()]],
                    vec!["TIME"],
                    true,
                )
            } else {
                None
            }
        }
        ("play in", [GoldArg::Entity(character), GoldArg::Entity(film)]) => q(
            format!(
                "Who plays {} in {}?",
                world.entity(*character).canonical,
                world.entity(*film).canonical
            ),
            vec![*character, *film],
            vec![entity_answer(world, f.subject)],
            vec!["PERSON"],
            true,
        ),
        ("win", [GoldArg::Entity(award)]) => q(
            format!("Which prize did {sname} win?"),
            vec![f.subject],
            vec![entity_answer(world, *award)],
            vec!["MISC"],
            false,
        ),
        ("win for", [GoldArg::Entity(award), ..]) => q(
            format!("Which prize did {sname} receive?"),
            vec![f.subject],
            vec![entity_answer(world, *award)],
            vec!["MISC"],
            false,
        ),
        ("play for", [GoldArg::Entity(club)]) => q(
            format!("Which club does {sname} play for?"),
            vec![f.subject],
            vec![entity_answer(world, *club)],
            vec!["ORGANIZATION"],
            false,
        ),
        ("shoot", [GoldArg::Entity(victim)]) => q(
            format!("Who shot {}?", world.entity(*victim).canonical),
            vec![*victim],
            vec![entity_answer(world, f.subject)],
            vec!["PERSON"],
            false,
        ),
        ("accuse of", [GoldArg::Entity(target), ..]) => q(
            format!("Who accused {}?", world.entity(*target).canonical),
            vec![*target],
            vec![entity_answer(world, f.subject)],
            vec!["PERSON"],
            false,
        ),
        ("donate to", [_, GoldArg::Entity(org)]) => q(
            format!("Which foundation did {sname} donate to?"),
            vec![f.subject],
            vec![entity_answer(world, *org)],
            vec!["ORGANIZATION"],
            true,
        ),
        ("release", [GoldArg::Entity(album), ..]) => q(
            format!("Which album did {sname} release?"),
            vec![f.subject],
            vec![entity_answer(world, *album)],
            vec!["MISC"],
            false,
        ),
        ("lead", [GoldArg::Entity(party)]) => q(
            format!("Which party does {sname} lead?"),
            vec![f.subject],
            vec![entity_answer(world, *party)],
            vec!["ORGANIZATION"],
            false,
        ),
        ("study at", [GoldArg::Entity(uni)]) => q(
            format!("Where did {sname} study?"),
            vec![f.subject],
            vec![entity_answer(world, *uni)],
            vec!["ORGANIZATION"],
            false,
        ),
        ("receive in from", [GoldArg::Entity(award), _, GoldArg::Entity(presenter)]) => q(
            format!(
                "Who presented {} to {sname}?",
                world.entity(*award).canonical
            ),
            vec![f.subject, *award],
            vec![entity_answer(world, *presenter)],
            vec!["PERSON"],
            true,
        ),
        _ => None,
    }
}

/// WebQuestions-like training questions over *non-recent* facts about
/// repository entities (the SVM's training signal, Appendix B).
pub fn webquestions_train(world: &World, n: usize, seed: u64) -> Vec<Question> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<usize> = (0..world.facts.len())
        .filter(|&i| {
            let f = &world.facts[i];
            !f.recent
                && !world.entity(f.subject).emerging
                && world.entity(f.subject).domain != Domain::Fiction
        })
        .collect();
    candidates.shuffle(&mut rng);
    let mut out = Vec::with_capacity(n);
    for &i in &candidates {
        if out.len() >= n {
            break;
        }
        if let Some(q) = question_for_fact(world, i, &mut rng) {
            out.push(q);
        }
    }
    out
}

/// GoogleTrendsQuestions-like test set: questions about recent events
/// (plus a ternary-heavy tail of film-role questions), as in §7.4.
pub fn trends_test(world: &World, n: usize, seed: u64) -> Vec<Question> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut recent: Vec<usize> = (0..world.facts.len())
        .filter(|&i| world.facts[i].recent)
        .collect();
    let mut ternary: Vec<usize> = (0..world.facts.len())
        .filter(|&i| {
            let f = &world.facts[i];
            !f.recent && f.relation == "play in"
        })
        .collect();
    recent.shuffle(&mut rng);
    ternary.shuffle(&mut rng);
    let mut out = Vec::with_capacity(n);
    // Two thirds recent events, one third ternary role questions.
    for &i in recent.iter().cycle().take(recent.len().min(2 * n / 3)) {
        if let Some(q) = question_for_fact(world, i, &mut rng) {
            out.push(q);
        }
    }
    for &i in &ternary {
        if out.len() >= n {
            break;
        }
        if let Some(q) = question_for_fact(world, i, &mut rng) {
            out.push(q);
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn training_questions_have_gold() {
        let w = World::generate(WorldConfig::default());
        let qs = webquestions_train(&w, 30, 1);
        assert!(qs.len() >= 10, "got {}", qs.len());
        for q in &qs {
            assert!(q.text.ends_with('?'));
            assert!(!q.gold.is_empty());
            assert!(!q.gold[0].is_empty());
            assert!(!q.about_recent);
        }
    }

    #[test]
    fn trends_questions_cover_recent_and_ternary() {
        let w = World::generate(WorldConfig::default());
        let qs = trends_test(&w, 20, 2);
        assert!(!qs.is_empty());
        assert!(qs.iter().any(|q| q.about_recent), "recent events needed");
        assert!(
            qs.iter().any(|q| q.needs_ternary),
            "ternary questions needed"
        );
    }

    #[test]
    fn play_in_question_asks_for_actor() {
        let w = World::generate(WorldConfig::default());
        let idx = w
            .facts
            .iter()
            .position(|f| f.relation == "play in")
            .expect("fact");
        let mut rng = SmallRng::seed_from_u64(3);
        let q = question_for_fact(&w, idx, &mut rng).expect("template");
        assert!(q.text.starts_with("Who plays"));
        assert!(q.needs_ternary);
        let actor = &w.entity(w.facts[idx].subject).canonical;
        assert!(q.gold[0].contains(actor));
    }

    #[test]
    fn deterministic_given_seed() {
        let w = World::generate(WorldConfig::default());
        let a = trends_test(&w, 10, 5);
        let b = trends_test(&w, 10, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }
}
