//! Linear models over sparse features: logistic regression (SGD) and a
//! linear SVM (Pegasos). Both are binary classifiers with dense weight
//! vectors and sparse examples.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// One training example: sparse features and a binary label.
#[derive(Clone, Debug)]
pub struct SparseExample {
    /// Sorted `(index, value)` features.
    pub features: Vec<(u32, f32)>,
    /// Label: `true` = positive class.
    pub label: bool,
}

fn dot(w: &[f64], x: &[(u32, f32)]) -> f64 {
    x.iter()
        .map(|&(i, v)| w[i as usize] * v as f64)
        .sum::<f64>()
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// L2-regularized logistic regression trained by SGD.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Trains on `examples` with feature dimensionality `dim`.
    ///
    /// `epochs` passes of shuffled SGD with learning rate `lr` and L2
    /// penalty `l2`; deterministic given `seed`.
    pub fn train(
        examples: &[SparseExample],
        dim: usize,
        epochs: usize,
        lr: f64,
        l2: f64,
        seed: u64,
    ) -> Self {
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for epoch in 0..epochs {
            order.shuffle(&mut rng);
            let rate = lr / (1.0 + epoch as f64 * 0.3);
            for &i in &order {
                let ex = &examples[i];
                let y = if ex.label { 1.0 } else { 0.0 };
                let p = sigmoid(dot(&w, &ex.features) + b);
                let g = p - y;
                for &(j, v) in &ex.features {
                    let j = j as usize;
                    w[j] -= rate * (g * v as f64 + l2 * w[j]);
                }
                b -= rate * g;
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// P(positive | features).
    pub fn predict_proba(&self, features: &[(u32, f32)]) -> f64 {
        sigmoid(dot(&self.weights, features) + self.bias)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, features: &[(u32, f32)]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// The learned weights (for factor-graph reuse).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// Linear SVM trained by the Pegasos sub-gradient method.
#[derive(Clone, Debug)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains with regularization `lambda` for `iterations` stochastic
    /// steps; deterministic given `seed`.
    pub fn train(
        examples: &[SparseExample],
        dim: usize,
        lambda: f64,
        iterations: usize,
        seed: u64,
    ) -> Self {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut rng = SmallRng::seed_from_u64(seed);
        for t in 1..=iterations {
            let ex = &examples[rng.gen_range(0..examples.len())];
            let y = if ex.label { 1.0 } else { -1.0 };
            let eta = 1.0 / (lambda * t as f64);
            let margin = y * (dot(&w, &ex.features) + b);
            // w <- (1 - eta*lambda) w  [+ eta*y*x if margin violated]
            let shrink = 1.0 - eta * lambda;
            if shrink > 0.0 {
                for wi in w.iter_mut() {
                    *wi *= shrink;
                }
            }
            if margin < 1.0 {
                for &(j, v) in &ex.features {
                    w[j as usize] += eta * y * v as f64;
                }
                b += eta * y * 0.1; // small unregularized bias step
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// Signed decision value (margin).
    pub fn decision(&self, features: &[(u32, f32)]) -> f64 {
        dot(&self.weights, features) + self.bias
    }

    /// Hard decision.
    pub fn predict(&self, features: &[(u32, f32)]) -> bool {
        self.decision(features) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy set: positive iff feature 0 present.
    fn toy(n: usize) -> Vec<SparseExample> {
        (0..n)
            .map(|i| {
                let pos = i % 2 == 0;
                let mut features = vec![(if pos { 0 } else { 1 }, 1.0f32)];
                // noise feature shared by both classes
                features.push((2, 1.0));
                features.sort_by_key(|&(j, _)| j);
                SparseExample {
                    features,
                    label: pos,
                }
            })
            .collect()
    }

    #[test]
    fn logreg_learns_separable_data() {
        let data = toy(200);
        let m = LogisticRegression::train(&data, 8, 20, 0.5, 1e-4, 42);
        for ex in &data {
            assert_eq!(m.predict(&ex.features), ex.label);
        }
        assert!(m.predict_proba(&[(0, 1.0)]) > 0.8);
        assert!(m.predict_proba(&[(1, 1.0)]) < 0.2);
    }

    #[test]
    fn logreg_probabilities_are_calibratedish() {
        let data = toy(400);
        let m = LogisticRegression::train(&data, 8, 30, 0.5, 1e-4, 1);
        let p_pos = m.predict_proba(&[(0, 1.0), (2, 1.0)]);
        let p_neg = m.predict_proba(&[(1, 1.0), (2, 1.0)]);
        assert!(p_pos > 0.9, "got {p_pos}");
        assert!(p_neg < 0.1, "got {p_neg}");
    }

    #[test]
    fn svm_learns_separable_data() {
        let data = toy(200);
        let m = LinearSvm::train(&data, 8, 0.01, 4000, 7);
        let correct = data
            .iter()
            .filter(|ex| m.predict(&ex.features) == ex.label)
            .count();
        assert!(correct >= 195, "only {correct}/200 correct");
        assert!(m.decision(&[(0, 1.0)]) > m.decision(&[(1, 1.0)]));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = toy(50);
        let a = LogisticRegression::train(&data, 8, 5, 0.5, 1e-4, 9);
        let b = LogisticRegression::train(&data, 8, 5, 0.5, 1e-4, 9);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn svm_rejects_empty_training_set() {
        LinearSvm::train(&[], 4, 0.01, 10, 0);
    }
}
