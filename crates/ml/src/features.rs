//! Hashing-trick feature vectorization.
//!
//! The QA classifier's features are binary token pairs `(x, y)` over an
//! unbounded vocabulary (Appendix B); hashing them into a fixed-dimension
//! space avoids a global feature dictionary while keeping training linear.

use std::hash::{Hash, Hasher};

/// Hashes string features into a fixed dimensionality.
#[derive(Clone, Debug)]
pub struct FeatureHasher {
    dim: usize,
}

impl FeatureHasher {
    /// A hasher with `dim` buckets (power of two recommended).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }

    /// The output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bucket index of a named feature.
    pub fn index(&self, feature: &str) -> usize {
        let mut h = qkb_util::FxHasher::default();
        feature.hash(&mut h);
        (h.finish() % self.dim as u64) as usize
    }

    /// Vectorizes a bag of binary features into sorted, deduplicated
    /// `(index, value)` pairs (value 1.0; collisions keep value 1.0 —
    /// binary semantics).
    pub fn vectorize<'a, I: IntoIterator<Item = &'a str>>(&self, features: I) -> Vec<(u32, f32)> {
        let mut idx: Vec<u32> = features.into_iter().map(|f| self.index(f) as u32).collect();
        idx.sort_unstable();
        idx.dedup();
        idx.into_iter().map(|i| (i, 1.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        let h = FeatureHasher::new(1 << 12);
        let a = h.index("q:who|c:person");
        assert_eq!(a, h.index("q:who|c:person"));
        assert!(a < h.dim());
    }

    #[test]
    fn vectorize_dedups_and_sorts() {
        let h = FeatureHasher::new(64);
        let v = h.vectorize(["x", "y", "x"]);
        assert!(v.len() <= 2);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(v.iter().all(|&(_, val)| val == 1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        FeatureHasher::new(0);
    }
}
