//! Limited-memory BFGS minimization (two-loop recursion) with backtracking
//! (Armijo) line search — the optimizer the paper uses to fit the α₁..α₄
//! edge-weight hyper-parameters against annotated facts (§4, citing Liu &
//! Nocedal \[33\]).

/// Configuration for [`lbfgs_minimize`].
#[derive(Clone, Copy, Debug)]
pub struct LbfgsConfig {
    /// History size `m` (pairs of (s, y) kept).
    pub memory: usize,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Gradient-norm convergence tolerance.
    pub tol: f64,
    /// Initial step for the line search.
    pub initial_step: f64,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            memory: 8,
            max_iters: 100,
            tol: 1e-6,
            initial_step: 1.0,
        }
    }
}

/// Minimizes `f` starting from `x0`. `f` returns `(value, gradient)`.
/// Returns `(x*, f(x*), iterations)`.
pub fn lbfgs_minimize<F>(mut f: F, x0: &[f64], config: LbfgsConfig) -> (Vec<f64>, f64, usize)
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    let n = x0.len();
    let mut x = x0.to_vec();
    let (mut fx, mut g) = f(&x);
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    for iter in 0..config.max_iters {
        let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        if gnorm < config.tol {
            return (x, fx, iter);
        }

        // Two-loop recursion: d = -H g.
        let mut q = g.clone();
        let k = s_hist.len();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = rho_hist[i] * dot(&s_hist[i], &q);
            axpy(&mut q, -alpha[i], &y_hist[i]);
        }
        // Initial Hessian scaling gamma = s·y / y·y.
        let gamma = if k > 0 {
            let sy = dot(&s_hist[k - 1], &y_hist[k - 1]);
            let yy = dot(&y_hist[k - 1], &y_hist[k - 1]);
            if yy > 0.0 {
                sy / yy
            } else {
                1.0
            }
        } else {
            1.0
        };
        for qi in q.iter_mut() {
            *qi *= gamma;
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            axpy(&mut q, alpha[i] - beta, &s_hist[i]);
        }
        let d: Vec<f64> = q.iter().map(|&v| -v).collect();

        // Backtracking line search (Armijo).
        let gd = dot(&g, &d);
        let (step_dir, gd) = if gd >= 0.0 {
            // Not a descent direction (numerical); fall back to -g.
            let d: Vec<f64> = g.iter().map(|&v| -v).collect();
            let gd = -g.iter().map(|v| v * v).sum::<f64>();
            (d, gd)
        } else {
            (d, gd)
        };
        let mut step = config.initial_step;
        let c1 = 1e-4;
        let mut accepted = false;
        let mut x_new = x.clone();
        let mut fx_new = fx;
        let mut g_new = g.clone();
        for _ in 0..40 {
            for i in 0..n {
                x_new[i] = x[i] + step * step_dir[i];
            }
            let (fv, gv) = f(&x_new);
            if fv <= fx + c1 * step * gd {
                fx_new = fv;
                g_new = gv;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            return (x, fx, iter);
        }

        // Update history.
        let s: Vec<f64> = (0..n).map(|i| x_new[i] - x[i]).collect();
        let y: Vec<f64> = (0..n).map(|i| g_new[i] - g[i]).collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 {
            if s_hist.len() == config.memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }
        x = x_new;
        fx = fx_new;
        g = g_new;
    }
    (x, fx, config.max_iters)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x0-3)^2 + 2(x1+1)^2
        let f = |x: &[f64]| {
            let v = (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2);
            let g = vec![2.0 * (x[0] - 3.0), 4.0 * (x[1] + 1.0)];
            (v, g)
        };
        let (x, fx, _) = lbfgs_minimize(f, &[0.0, 0.0], LbfgsConfig::default());
        assert!((x[0] - 3.0).abs() < 1e-4, "x0 = {}", x[0]);
        assert!((x[1] + 1.0).abs() < 1e-4, "x1 = {}", x[1]);
        assert!(fx < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let f = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            let v = a * a + 100.0 * b * b;
            let g = vec![-2.0 * a - 400.0 * x[0] * b, 200.0 * b];
            (v, g)
        };
        // Armijo-only backtracking (no Wolfe curvature check) needs more
        // iterations on Rosenbrock's valley; ~700 observed.
        let cfg = LbfgsConfig {
            max_iters: 2000,
            ..Default::default()
        };
        let (x, fx, _) = lbfgs_minimize(f, &[-1.2, 1.0], cfg);
        assert!(fx < 1e-6, "fx = {fx}, x = {x:?}");
        assert!((x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn converges_immediately_at_optimum() {
        let f = |x: &[f64]| (x[0] * x[0], vec![2.0 * x[0]]);
        let (_, fx, iters) = lbfgs_minimize(f, &[0.0], LbfgsConfig::default());
        assert_eq!(iters, 0);
        assert_eq!(fx, 0.0);
    }

    #[test]
    fn high_dimensional_sum_of_squares() {
        let f = |x: &[f64]| {
            let v: f64 = x.iter().map(|v| v * v).sum();
            let g: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
            (v, g)
        };
        let x0 = vec![1.0; 50];
        let (_, fx, _) = lbfgs_minimize(f, &x0, LbfgsConfig::default());
        assert!(fx < 1e-8);
    }
}
