//! # qkb-ml
//!
//! Linear machine-learning substrate for the QKBfly reproduction:
//!
//! * [`features`] — hashing-trick feature vectorization (the binary
//!   token-pair features of the QA classifier, Appendix B);
//! * [`linear`] — logistic regression (DeepDive-style factor weights) and
//!   a linear SVM trained by Pegasos (the Liblinear substitute of
//!   Appendix B);
//! * [`lbfgs`] — limited-memory BFGS (two-loop recursion), used to fit the
//!   α₁..α₄ hyper-parameters of the edge-weight model (§4, citing \[33\]).

pub mod features;
pub mod lbfgs;
pub mod linear;

pub use features::FeatureHasher;
pub use lbfgs::{lbfgs_minimize, LbfgsConfig};
pub use linear::{LinearSvm, LogisticRegression, SparseExample};
