//! The sharded counted LRU machinery shared by both cache tiers.
//!
//! [`crate::FragmentCache`] (entry-bounded, tier two) and
//! [`crate::Stage1Cache`] (byte-bounded, tier one) are thin typed
//! wrappers over this store: a [`qkb_util::LruCache`] split across
//! independently locked shards, keyed by a 64-bit fingerprint, with
//! lock-free hit/miss/eviction counters. Keeping the machinery in one
//! place means shard selection, counted lookups and eviction accounting
//! cannot drift apart between the tiers.

use qkb_util::LruCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Raw counter totals across all shards.
pub(crate) struct ShardedTotals {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub weight: u64,
}

/// A sharded, bounded, counted LRU over fingerprint keys.
pub(crate) struct ShardedLru<V> {
    shards: Vec<Mutex<LruCache<u64, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// A store bounded by **entry count**, split so per-shard capacities
    /// sum exactly to `capacity` (shards are clamped to
    /// `1..=capacity.max(1)`; capacity 0 disables caching).
    pub fn entry_bounded(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let (base, extra) = (capacity / shards, capacity % shards);
        Self::from_caches((0..shards).map(|i| LruCache::new(base + usize::from(i < extra))))
    }

    /// A store bounded by **total weight** (approximate bytes), split so
    /// per-shard budgets sum exactly to `capacity` (shards are clamped
    /// to at least 1; capacity 0 disables caching).
    pub fn weight_bounded(capacity: u64, shards: usize) -> Self {
        let shards = shards.max(1) as u64;
        let (base, extra) = (capacity / shards, capacity % shards);
        Self::from_caches((0..shards).map(|i| LruCache::weighted(base + u64::from(i < extra))))
    }

    fn from_caches(caches: impl Iterator<Item = LruCache<u64, V>>) -> Self {
        Self {
            shards: caches.map(Mutex::new).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<LruCache<u64, V>> {
        // Keys are already fingerprints; fold the high bits so shard
        // choice uses entropy the per-shard LRU map doesn't.
        &self.shards[((key >> 32) ^ key) as usize % self.shards.len()]
    }

    /// Counted lookup; promotes the entry on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        match self.lookup(key, true) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Uncounted lookup that does **not** perturb the LRU order.
    pub fn peek(&self, key: u64) -> Option<V> {
        self.lookup(key, false)
    }

    /// The one lookup primitive: `touch` decides whether a hit is
    /// promoted in the recency order.
    fn lookup(&self, key: u64, touch: bool) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard");
        if touch {
            shard.get(&key).cloned()
        } else {
            shard.peek(&key).cloned()
        }
    }

    /// Corrects the counters when a lookup counted as a miss turned out
    /// to be a hit after all (another thread published the value between
    /// the counted fast-path miss and a locked re-check).
    pub fn reclassify_miss_as_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// The mirror correction: a lookup counted as a hit turned out
    /// unusable after all (the component cache's exact structural
    /// re-check rejected a fingerprint-colliding entry).
    pub fn reclassify_hit_as_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_sub(1, Ordering::Relaxed);
    }

    /// Zeroes the hit/miss/eviction counters (benchmark phase
    /// boundaries); cached entries stay resident — occupancy is state,
    /// not a counter.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Inserts `key → value` carrying `weight`, counting capacity
    /// evictions. A same-key replacement is a refresh and an insert
    /// bounced straight back out (zero capacity, or heavier than a
    /// shard's whole weight budget) is not an eviction — in neither
    /// case was a cached entry lost.
    pub fn insert_weighted(&self, key: u64, value: V, weight: u64) {
        let outcome = self
            .shard(key)
            .lock()
            .expect("cache shard")
            .insert_weighted(key, value, weight);
        let evicted_others = outcome.evicted.iter().filter(|(k, _)| *k != key).count() as u64;
        self.evictions.fetch_add(evicted_others, Ordering::Relaxed);
    }

    /// Entries cached right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// Counter totals plus current entry/weight occupancy.
    pub fn totals(&self) -> ShardedTotals {
        let (entries, weight) = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard");
                (shard.len(), shard.approx_bytes())
            })
            .fold((0usize, 0u64), |(n, b), (sn, sb)| (n + sn, b + sb));
        ShardedTotals {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_bounce_is_not_an_eviction() {
        // Regression (PR 3 behavior): an entry heavier than the whole
        // weight budget bounces straight back without landing in the
        // eviction counter — no cached entry was lost — and without
        // flushing the resident working set.
        let store: ShardedLru<u32> = ShardedLru::weight_bounded(100, 1);
        store.insert_weighted(1, 10, 60);
        store.insert_weighted(2, 20, 30);
        assert_eq!(store.len(), 2);
        store.insert_weighted(3, 30, 500); // heavier than the budget
        let totals = store.totals();
        assert_eq!(totals.evictions, 0, "a bounce must not count as eviction");
        assert_eq!(totals.entries, 2, "residents must survive the bounce");
        assert_eq!(store.peek(1), Some(10));
        assert_eq!(store.peek(2), Some(20));
        assert_eq!(store.peek(3), None);
        // Genuine weight pressure still counts.
        store.insert_weighted(4, 40, 90);
        assert!(store.totals().evictions >= 1);
    }

    #[test]
    fn zero_capacity_bounce_is_not_an_eviction() {
        let store: ShardedLru<u32> = ShardedLru::weight_bounded(0, 1);
        store.insert_weighted(1, 10, 5);
        let totals = store.totals();
        assert_eq!((totals.evictions, totals.entries), (0, 0));
    }
}
