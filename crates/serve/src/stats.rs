//! Serving metrics: lock-free counters while serving, a consistent-enough
//! [`ServeStats`] snapshot on demand (p50/p95 latency, throughput, cache
//! hit rate, per-stage build time).

use crate::cache::CacheCounters;
use crate::stage1_cache::Stage1Counters;
use qkb_session::SessionStats;
use qkb_util::json::Value;
use qkbfly::{ResolveCounters, StageTimings};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples resident for percentile snapshots. When a
/// long-running server overflows the window, the **oldest** samples are
/// overwritten (sliding window) and the snapshot reports how many were
/// displaced — percentiles track recent traffic instead of silently
/// freezing on the first 2^20 samples forever.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// A fixed-capacity ring of latency samples: the newest `capacity`
/// samples are resident, older ones are overwritten and counted in
/// `dropped`.
pub(crate) struct LatencyRing {
    samples: Vec<u64>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Samples overwritten since the last reset (they no longer
    /// contribute to percentile snapshots).
    dropped: u64,
    capacity: usize,
}

impl LatencyRing {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            next: 0,
            dropped: 0,
            capacity,
        }
    }

    pub(crate) fn push(&mut self, sample: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Resident samples (insertion order not preserved across wraps;
    /// callers sort for percentiles anyway).
    pub(crate) fn resident(&self) -> Vec<u64> {
        self.samples.clone()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn clear(&mut self) {
        self.samples.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// Shared interior-mutable metrics sink the worker shards write into.
pub(crate) struct ServeMetrics {
    started: Mutex<Instant>,
    requests: AtomicU64,
    batches: AtomicU64,
    build_rounds: AtomicU64,
    cold_builds: AtomicU64,
    assembled_builds: AtomicU64,
    docs_built: AtomicU64,
    batch_coalesced: AtomicU64,
    inflight_coalesced: AtomicU64,
    build_preprocess_us: AtomicU64,
    build_graph_us: AtomicU64,
    build_resolve_us: AtomicU64,
    build_canonicalize_us: AtomicU64,
    resolve_components: AtomicU64,
    ilp_variables: AtomicU64,
    bnb_nodes: AtomicU64,
    pruned_candidates: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

impl ServeMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Mutex::new(Instant::now()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            build_rounds: AtomicU64::new(0),
            cold_builds: AtomicU64::new(0),
            assembled_builds: AtomicU64::new(0),
            docs_built: AtomicU64::new(0),
            batch_coalesced: AtomicU64::new(0),
            inflight_coalesced: AtomicU64::new(0),
            build_preprocess_us: AtomicU64::new(0),
            build_graph_us: AtomicU64::new(0),
            build_resolve_us: AtomicU64::new(0),
            build_canonicalize_us: AtomicU64::new(0),
            resolve_components: AtomicU64::new(0),
            ilp_variables: AtomicU64::new(0),
            bnb_nodes: AtomicU64::new(0),
            pruned_candidates: AtomicU64::new(0),
            latencies_us: Mutex::new(LatencyRing::with_capacity(MAX_LATENCY_SAMPLES)),
        }
    }

    pub(crate) fn note_batch(&self, jobs: u64, groups: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        // Requests beyond the first of each identical-query group were
        // coalesced at admission.
        self.batch_coalesced
            .fetch_add(jobs - groups, Ordering::Relaxed);
    }

    /// One grouped build round: `groups` fragments were constructed, of
    /// which `assembled` reused at least one cached stage-1 artifact and
    /// the rest (`groups - assembled`) were fully cold.
    pub(crate) fn note_build_round(
        &self,
        groups: u64,
        assembled: u64,
        docs: u64,
        timings: StageTimings,
        resolve: ResolveCounters,
    ) {
        self.build_rounds.fetch_add(1, Ordering::Relaxed);
        self.cold_builds
            .fetch_add(groups - assembled, Ordering::Relaxed);
        self.assembled_builds
            .fetch_add(assembled, Ordering::Relaxed);
        self.docs_built.fetch_add(docs, Ordering::Relaxed);
        self.build_preprocess_us
            .fetch_add(timings.preprocess.as_micros() as u64, Ordering::Relaxed);
        self.build_graph_us
            .fetch_add(timings.graph.as_micros() as u64, Ordering::Relaxed);
        self.build_resolve_us
            .fetch_add(timings.resolve.as_micros() as u64, Ordering::Relaxed);
        self.build_canonicalize_us
            .fetch_add(timings.canonicalize.as_micros() as u64, Ordering::Relaxed);
        self.resolve_components
            .fetch_add(resolve.components, Ordering::Relaxed);
        self.ilp_variables
            .fetch_add(resolve.ilp_variables, Ordering::Relaxed);
        self.bnb_nodes
            .fetch_add(resolve.bnb_nodes, Ordering::Relaxed);
        self.pruned_candidates
            .fetch_add(resolve.pruned_candidates, Ordering::Relaxed);
    }

    pub(crate) fn note_inflight_coalesced(&self) {
        self.inflight_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_request(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latencies_us
            .lock()
            .expect("latency sink")
            .push(latency.as_micros() as u64);
    }

    /// Zeroes every counter and restarts the throughput clock — the
    /// benchmark phase boundary (`QkbServer::reset_stats` also resets
    /// both cache tiers' and the session store's counters so phases
    /// never hand-subtract).
    pub(crate) fn reset(&self) {
        *self.started.lock().expect("metrics clock") = Instant::now();
        for counter in [
            &self.requests,
            &self.batches,
            &self.build_rounds,
            &self.cold_builds,
            &self.assembled_builds,
            &self.docs_built,
            &self.batch_coalesced,
            &self.inflight_coalesced,
            &self.build_preprocess_us,
            &self.build_graph_us,
            &self.build_resolve_us,
            &self.build_canonicalize_us,
            &self.resolve_components,
            &self.ilp_variables,
            &self.bnb_nodes,
            &self.pruned_candidates,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.latencies_us.lock().expect("latency sink").clear();
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheCounters,
        stage1: Stage1Counters,
        sessions: SessionStats,
    ) -> ServeStats {
        // Copy out under the lock, sort after releasing it: requests
        // completing during a snapshot must not stall on a 2^20-sample
        // sort inside note_request.
        let (mut samples, latency_samples_dropped) = {
            let ring = self.latencies_us.lock().expect("latency sink");
            (ring.resident(), ring.dropped())
        };
        samples.sort_unstable();
        let samples = samples;
        let pct = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
            samples[idx] as f64 / 1000.0
        };
        let mean_ms = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0
        };
        let elapsed = self.started.lock().expect("metrics clock").elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        ServeStats {
            requests,
            elapsed,
            throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            latency_p50_ms: pct(0.50),
            latency_p95_ms: pct(0.95),
            latency_mean_ms: mean_ms,
            latency_samples_dropped,
            cache,
            stage1,
            sessions,
            batches: self.batches.load(Ordering::Relaxed),
            build_rounds: self.build_rounds.load(Ordering::Relaxed),
            cold_builds: self.cold_builds.load(Ordering::Relaxed),
            assembled_builds: self.assembled_builds.load(Ordering::Relaxed),
            docs_built: self.docs_built.load(Ordering::Relaxed),
            batch_coalesced: self.batch_coalesced.load(Ordering::Relaxed),
            inflight_coalesced: self.inflight_coalesced.load(Ordering::Relaxed),
            build_timings: StageTimings {
                preprocess: Duration::from_micros(self.build_preprocess_us.load(Ordering::Relaxed)),
                graph: Duration::from_micros(self.build_graph_us.load(Ordering::Relaxed)),
                resolve: Duration::from_micros(self.build_resolve_us.load(Ordering::Relaxed)),
                canonicalize: Duration::from_micros(
                    self.build_canonicalize_us.load(Ordering::Relaxed),
                ),
            },
            resolve_counters: ResolveCounters {
                components: self.resolve_components.load(Ordering::Relaxed),
                ilp_variables: self.ilp_variables.load(Ordering::Relaxed),
                bnb_nodes: self.bnb_nodes.load(Ordering::Relaxed),
                pruned_candidates: self.pruned_candidates.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time view of the server's health.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Time since the server started.
    pub elapsed: Duration,
    /// Requests per second over the server's lifetime.
    pub throughput_rps: f64,
    /// Median queue-to-reply latency (ms).
    pub latency_p50_ms: f64,
    /// 95th-percentile queue-to-reply latency (ms).
    pub latency_p95_ms: f64,
    /// Mean queue-to-reply latency (ms).
    pub latency_mean_ms: f64,
    /// Samples displaced from the latency window (percentiles cover the
    /// newest 2^20 samples; non-zero means the reported percentiles
    /// describe recent traffic, not the server's whole lifetime).
    pub latency_samples_dropped: u64,
    /// Fragment-cache counters (tier two: exact retrieved-set reuse).
    pub cache: CacheCounters,
    /// Per-document stage-1 cache counters (tier one: cross-query
    /// document reuse).
    pub stage1: Stage1Counters,
    /// Session-store counters (session-scoped streaming KBs:
    /// live/evicted sessions, extend-vs-cold turns, streaming dedup).
    pub sessions: SessionStats,
    /// Admission batches processed.
    pub batches: u64,
    /// Grouped `build_kb` rounds executed.
    pub build_rounds: u64,
    /// Fragments built fully cold (no stage-1 artifact reused).
    pub cold_builds: u64,
    /// Fragments assembled with at least one cached stage-1 artifact.
    pub assembled_builds: u64,
    /// Documents fed through builds (assembled or computed).
    pub docs_built: u64,
    /// Requests that shared a fragment with an identical query in the
    /// same admission batch.
    pub batch_coalesced: u64,
    /// Query groups that piggybacked on another shard's in-flight build.
    pub inflight_coalesced: u64,
    /// Summed per-stage build wall clock across all cold builds.
    pub build_timings: StageTimings,
    /// Summed resolve-stage work counters (coupling components, ILP
    /// variables, branch-and-bound nodes, pruned candidates) across all
    /// stage-1 computations.
    pub resolve_counters: ResolveCounters,
}

impl ServeStats {
    /// Fragment-cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Stage-1 (per-document) cache hit rate over all lookups.
    pub fn stage1_hit_rate(&self) -> f64 {
        self.stage1.hit_rate()
    }

    /// JSON rendering for benchmark reports and dashboards.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("requests", self.requests)
            .with("elapsed_s", self.elapsed.as_secs_f64())
            .with("throughput_rps", self.throughput_rps)
            .with("latency_p50_ms", self.latency_p50_ms)
            .with("latency_p95_ms", self.latency_p95_ms)
            .with("latency_mean_ms", self.latency_mean_ms)
            .with("latency_samples_dropped", self.latency_samples_dropped)
            .with("cache_hits", self.cache.hits)
            .with("cache_misses", self.cache.misses)
            .with("cache_evictions", self.cache.evictions)
            .with("cache_entries", self.cache.entries)
            .with("cache_hit_rate", self.cache_hit_rate())
            .with("stage1_hits", self.stage1.hits)
            .with("stage1_misses", self.stage1.misses)
            .with("stage1_evictions", self.stage1.evictions)
            .with("stage1_entries", self.stage1.entries)
            .with("stage1_bytes", self.stage1.approx_bytes)
            .with("stage1_capacity_bytes", self.stage1.capacity_bytes)
            .with("stage1_hit_rate", self.stage1_hit_rate())
            .with("sessions", self.sessions.to_json())
            .with("batches", self.batches)
            .with("build_rounds", self.build_rounds)
            .with("cold_builds", self.cold_builds)
            .with("assembled_builds", self.assembled_builds)
            .with("docs_built", self.docs_built)
            .with("batch_coalesced", self.batch_coalesced)
            .with("inflight_coalesced", self.inflight_coalesced)
            .with("build_timings", self.build_timings.to_json())
            .with("resolve_counters", self.resolve_counters.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_samples_and_counts_displaced() {
        let mut ring = LatencyRing::with_capacity(4);
        for v in 1..=4 {
            ring.push(v);
        }
        assert_eq!(ring.dropped(), 0);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![1, 2, 3, 4]);
        // Overflow: the two oldest are displaced, the window slides.
        ring.push(5);
        ring.push(6);
        assert_eq!(ring.dropped(), 2);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![3, 4, 5, 6]);
        ring.clear();
        assert_eq!((ring.resident().len(), ring.dropped()), (0, 0));
    }

    #[test]
    fn ring_wraps_repeatedly_without_growing() {
        let mut ring = LatencyRing::with_capacity(3);
        for v in 0..100 {
            ring.push(v);
        }
        assert_eq!(ring.resident().len(), 3);
        assert_eq!(ring.dropped(), 97);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![97, 98, 99]);
    }

    #[test]
    fn snapshot_surfaces_dropped_count() {
        let metrics = ServeMetrics::new();
        metrics.note_request(Duration::from_micros(100));
        let stats = metrics.snapshot(
            CacheCounters::default(),
            Stage1Counters::default(),
            SessionStats::default(),
        );
        assert_eq!(stats.latency_samples_dropped, 0);
        assert_eq!(stats.to_json()["latency_samples_dropped"], 0u64);
    }
}
