//! Serving metrics: lock-free counters while serving, a consistent-enough
//! [`ServeStats`] snapshot on demand (p50/p95 latency, throughput, cache
//! hit rate, per-stage build time).

use crate::cache::CacheCounters;
use crate::stage1_cache::Stage1Counters;
use qkb_session::SessionStats;
use qkb_util::json::Value;
use qkbfly::StageTimings;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples kept for percentile snapshots; beyond this the
/// counters stay exact but new samples are dropped (a closed-loop bench
/// never gets near it).
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// Shared interior-mutable metrics sink the worker shards write into.
pub(crate) struct ServeMetrics {
    started: Mutex<Instant>,
    requests: AtomicU64,
    batches: AtomicU64,
    build_rounds: AtomicU64,
    cold_builds: AtomicU64,
    assembled_builds: AtomicU64,
    docs_built: AtomicU64,
    batch_coalesced: AtomicU64,
    inflight_coalesced: AtomicU64,
    build_preprocess_us: AtomicU64,
    build_graph_us: AtomicU64,
    build_resolve_us: AtomicU64,
    build_canonicalize_us: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl ServeMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Mutex::new(Instant::now()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            build_rounds: AtomicU64::new(0),
            cold_builds: AtomicU64::new(0),
            assembled_builds: AtomicU64::new(0),
            docs_built: AtomicU64::new(0),
            batch_coalesced: AtomicU64::new(0),
            inflight_coalesced: AtomicU64::new(0),
            build_preprocess_us: AtomicU64::new(0),
            build_graph_us: AtomicU64::new(0),
            build_resolve_us: AtomicU64::new(0),
            build_canonicalize_us: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn note_batch(&self, jobs: u64, groups: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        // Requests beyond the first of each identical-query group were
        // coalesced at admission.
        self.batch_coalesced
            .fetch_add(jobs - groups, Ordering::Relaxed);
    }

    /// One grouped build round: `groups` fragments were constructed, of
    /// which `assembled` reused at least one cached stage-1 artifact and
    /// the rest (`groups - assembled`) were fully cold.
    pub(crate) fn note_build_round(
        &self,
        groups: u64,
        assembled: u64,
        docs: u64,
        timings: StageTimings,
    ) {
        self.build_rounds.fetch_add(1, Ordering::Relaxed);
        self.cold_builds
            .fetch_add(groups - assembled, Ordering::Relaxed);
        self.assembled_builds
            .fetch_add(assembled, Ordering::Relaxed);
        self.docs_built.fetch_add(docs, Ordering::Relaxed);
        self.build_preprocess_us
            .fetch_add(timings.preprocess.as_micros() as u64, Ordering::Relaxed);
        self.build_graph_us
            .fetch_add(timings.graph.as_micros() as u64, Ordering::Relaxed);
        self.build_resolve_us
            .fetch_add(timings.resolve.as_micros() as u64, Ordering::Relaxed);
        self.build_canonicalize_us
            .fetch_add(timings.canonicalize.as_micros() as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_inflight_coalesced(&self) {
        self.inflight_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_request(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.latencies_us.lock().expect("latency sink");
        if samples.len() < MAX_LATENCY_SAMPLES {
            samples.push(latency.as_micros() as u64);
        }
    }

    /// Zeroes every counter and restarts the throughput clock — the
    /// benchmark phase boundary (`QkbServer::reset_stats` also resets
    /// both cache tiers' and the session store's counters so phases
    /// never hand-subtract).
    pub(crate) fn reset(&self) {
        *self.started.lock().expect("metrics clock") = Instant::now();
        for counter in [
            &self.requests,
            &self.batches,
            &self.build_rounds,
            &self.cold_builds,
            &self.assembled_builds,
            &self.docs_built,
            &self.batch_coalesced,
            &self.inflight_coalesced,
            &self.build_preprocess_us,
            &self.build_graph_us,
            &self.build_resolve_us,
            &self.build_canonicalize_us,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.latencies_us.lock().expect("latency sink").clear();
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheCounters,
        stage1: Stage1Counters,
        sessions: SessionStats,
    ) -> ServeStats {
        let samples = {
            let mut s = self.latencies_us.lock().expect("latency sink").clone();
            s.sort_unstable();
            s
        };
        let pct = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
            samples[idx] as f64 / 1000.0
        };
        let mean_ms = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0
        };
        let elapsed = self.started.lock().expect("metrics clock").elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        ServeStats {
            requests,
            elapsed,
            throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            latency_p50_ms: pct(0.50),
            latency_p95_ms: pct(0.95),
            latency_mean_ms: mean_ms,
            cache,
            stage1,
            sessions,
            batches: self.batches.load(Ordering::Relaxed),
            build_rounds: self.build_rounds.load(Ordering::Relaxed),
            cold_builds: self.cold_builds.load(Ordering::Relaxed),
            assembled_builds: self.assembled_builds.load(Ordering::Relaxed),
            docs_built: self.docs_built.load(Ordering::Relaxed),
            batch_coalesced: self.batch_coalesced.load(Ordering::Relaxed),
            inflight_coalesced: self.inflight_coalesced.load(Ordering::Relaxed),
            build_timings: StageTimings {
                preprocess: Duration::from_micros(self.build_preprocess_us.load(Ordering::Relaxed)),
                graph: Duration::from_micros(self.build_graph_us.load(Ordering::Relaxed)),
                resolve: Duration::from_micros(self.build_resolve_us.load(Ordering::Relaxed)),
                canonicalize: Duration::from_micros(
                    self.build_canonicalize_us.load(Ordering::Relaxed),
                ),
            },
        }
    }
}

/// A point-in-time view of the server's health.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Time since the server started.
    pub elapsed: Duration,
    /// Requests per second over the server's lifetime.
    pub throughput_rps: f64,
    /// Median queue-to-reply latency (ms).
    pub latency_p50_ms: f64,
    /// 95th-percentile queue-to-reply latency (ms).
    pub latency_p95_ms: f64,
    /// Mean queue-to-reply latency (ms).
    pub latency_mean_ms: f64,
    /// Fragment-cache counters (tier two: exact retrieved-set reuse).
    pub cache: CacheCounters,
    /// Per-document stage-1 cache counters (tier one: cross-query
    /// document reuse).
    pub stage1: Stage1Counters,
    /// Session-store counters (session-scoped streaming KBs:
    /// live/evicted sessions, extend-vs-cold turns, streaming dedup).
    pub sessions: SessionStats,
    /// Admission batches processed.
    pub batches: u64,
    /// Grouped `build_kb` rounds executed.
    pub build_rounds: u64,
    /// Fragments built fully cold (no stage-1 artifact reused).
    pub cold_builds: u64,
    /// Fragments assembled with at least one cached stage-1 artifact.
    pub assembled_builds: u64,
    /// Documents fed through builds (assembled or computed).
    pub docs_built: u64,
    /// Requests that shared a fragment with an identical query in the
    /// same admission batch.
    pub batch_coalesced: u64,
    /// Query groups that piggybacked on another shard's in-flight build.
    pub inflight_coalesced: u64,
    /// Summed per-stage build wall clock across all cold builds.
    pub build_timings: StageTimings,
}

impl ServeStats {
    /// Fragment-cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Stage-1 (per-document) cache hit rate over all lookups.
    pub fn stage1_hit_rate(&self) -> f64 {
        self.stage1.hit_rate()
    }

    /// JSON rendering for benchmark reports and dashboards.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("requests", self.requests)
            .with("elapsed_s", self.elapsed.as_secs_f64())
            .with("throughput_rps", self.throughput_rps)
            .with("latency_p50_ms", self.latency_p50_ms)
            .with("latency_p95_ms", self.latency_p95_ms)
            .with("latency_mean_ms", self.latency_mean_ms)
            .with("cache_hits", self.cache.hits)
            .with("cache_misses", self.cache.misses)
            .with("cache_evictions", self.cache.evictions)
            .with("cache_entries", self.cache.entries)
            .with("cache_hit_rate", self.cache_hit_rate())
            .with("stage1_hits", self.stage1.hits)
            .with("stage1_misses", self.stage1.misses)
            .with("stage1_evictions", self.stage1.evictions)
            .with("stage1_entries", self.stage1.entries)
            .with("stage1_bytes", self.stage1.approx_bytes)
            .with("stage1_capacity_bytes", self.stage1.capacity_bytes)
            .with("stage1_hit_rate", self.stage1_hit_rate())
            .with("sessions", self.sessions.to_json())
            .with("batches", self.batches)
            .with("build_rounds", self.build_rounds)
            .with("cold_builds", self.cold_builds)
            .with("assembled_builds", self.assembled_builds)
            .with("docs_built", self.docs_built)
            .with("batch_coalesced", self.batch_coalesced)
            .with("inflight_coalesced", self.inflight_coalesced)
            .with("build_timings", self.build_timings.to_json())
    }
}
