//! Serving metrics: lock-free counters while serving, a consistent-enough
//! [`ServeStats`] snapshot on demand (p50/p95 latency, throughput, cache
//! hit rate, per-stage build time).

use crate::cache::CacheCounters;
use crate::component_cache::ComponentCacheCounters;
use crate::stage1_cache::Stage1Counters;
use qkb_obs::{Counter, Histogram, Registry};
use qkb_session::SessionStats;
use qkb_util::json::Value;
use qkbfly::{ResolveCounters, StageTimings};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples resident for percentile snapshots. When a
/// long-running server overflows the window, the **oldest** samples are
/// overwritten (sliding window) and the snapshot reports how many were
/// displaced — percentiles track recent traffic instead of silently
/// freezing on the first 2^20 samples forever.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// A fixed-capacity ring of latency samples: the newest `capacity`
/// samples are resident, older ones are overwritten and counted in
/// `dropped`.
pub(crate) struct LatencyRing {
    samples: Vec<u64>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Samples overwritten since the last reset (they no longer
    /// contribute to percentile snapshots).
    dropped: u64,
    capacity: usize,
}

impl LatencyRing {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            next: 0,
            dropped: 0,
            capacity,
        }
    }

    pub(crate) fn push(&mut self, sample: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Resident samples (insertion order not preserved across wraps;
    /// callers sort for percentiles anyway).
    pub(crate) fn resident(&self) -> Vec<u64> {
        self.samples.clone()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn clear(&mut self) {
        self.samples.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// Shared interior-mutable metrics sink the worker shards write into.
///
/// Every cell lives in a [`qkb_obs::Registry`] under a stable
/// `serve_*` name; the struct holds pre-resolved handles so hot-path
/// updates stay single atomic ops. [`ServeStats`] aggregates the same
/// cells, and the registry snapshot (Prometheus text, all-zero reset
/// checks) is exposed through [`ServeMetrics::registry`].
pub(crate) struct ServeMetrics {
    registry: Registry,
    started: Mutex<Instant>,
    requests: Counter,
    batches: Counter,
    build_rounds: Counter,
    cold_builds: Counter,
    assembled_builds: Counter,
    docs_built: Counter,
    batch_coalesced: Counter,
    inflight_coalesced: Counter,
    build_preprocess_us: Counter,
    build_graph_us: Counter,
    build_resolve_us: Counter,
    build_canonicalize_us: Counter,
    resolve_components: Counter,
    ilp_variables: Counter,
    bnb_nodes: Counter,
    pruned_candidates: Counter,
    resolve_cache_hits: Counter,
    resolve_cache_misses: Counter,
    resolve_cache_bypass: Counter,
    forest_forks: Counter,
    /// Log-scale latency distribution for the text exposition; exact
    /// percentiles still come from the sample ring below.
    latency_hist: Histogram,
    latencies_us: Mutex<LatencyRing>,
}

impl ServeMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        Self {
            requests: registry.counter("serve_requests_total"),
            batches: registry.counter("serve_batches_total"),
            build_rounds: registry.counter("serve_build_rounds_total"),
            cold_builds: registry.counter("serve_cold_builds_total"),
            assembled_builds: registry.counter("serve_assembled_builds_total"),
            docs_built: registry.counter("serve_docs_built_total"),
            batch_coalesced: registry.counter("serve_batch_coalesced_total"),
            inflight_coalesced: registry.counter("serve_inflight_coalesced_total"),
            build_preprocess_us: registry.counter("serve_build_preprocess_us_total"),
            build_graph_us: registry.counter("serve_build_graph_us_total"),
            build_resolve_us: registry.counter("serve_build_resolve_us_total"),
            build_canonicalize_us: registry.counter("serve_build_canonicalize_us_total"),
            resolve_components: registry.counter("serve_resolve_components_total"),
            ilp_variables: registry.counter("serve_ilp_variables_total"),
            bnb_nodes: registry.counter("serve_bnb_nodes_total"),
            pruned_candidates: registry.counter("serve_pruned_candidates_total"),
            resolve_cache_hits: registry.counter("serve_resolve_cache_hits_total"),
            resolve_cache_misses: registry.counter("serve_resolve_cache_misses_total"),
            resolve_cache_bypass: registry.counter("serve_resolve_cache_bypass_total"),
            forest_forks: registry.counter("serve_forest_forks_total"),
            latency_hist: registry.histogram("serve_request_latency_us"),
            registry,
            started: Mutex::new(Instant::now()),
            latencies_us: Mutex::new(LatencyRing::with_capacity(MAX_LATENCY_SAMPLES)),
        }
    }

    /// The registry backing every counter above.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn note_batch(&self, jobs: u64, groups: u64) {
        self.batches.inc();
        // Requests beyond the first of each identical-query group were
        // coalesced at admission.
        self.batch_coalesced.add(jobs - groups);
    }

    /// One grouped build round: `groups` fragments were constructed, of
    /// which `assembled` reused at least one cached stage-1 artifact and
    /// the rest (`groups - assembled`) were fully cold.
    pub(crate) fn note_build_round(
        &self,
        groups: u64,
        assembled: u64,
        docs: u64,
        timings: StageTimings,
        resolve: ResolveCounters,
    ) {
        self.build_rounds.inc();
        self.cold_builds.add(groups - assembled);
        self.assembled_builds.add(assembled);
        self.docs_built.add(docs);
        self.build_preprocess_us
            .add(timings.preprocess.as_micros() as u64);
        self.build_graph_us.add(timings.graph.as_micros() as u64);
        self.build_resolve_us
            .add(timings.resolve.as_micros() as u64);
        self.build_canonicalize_us
            .add(timings.canonicalize.as_micros() as u64);
        self.resolve_components.add(resolve.components);
        self.ilp_variables.add(resolve.ilp_variables);
        self.bnb_nodes.add(resolve.bnb_nodes);
        self.pruned_candidates.add(resolve.pruned_candidates);
        self.resolve_cache_hits.add(resolve.cache_hits);
        self.resolve_cache_misses.add(resolve.cache_misses);
        self.resolve_cache_bypass.add(resolve.cache_bypass);
    }

    pub(crate) fn note_inflight_coalesced(&self) {
        self.inflight_coalesced.inc();
    }

    /// One session turn answered by forking a shared prefix from the
    /// prefix forest.
    pub(crate) fn note_forest_fork(&self) {
        self.forest_forks.inc();
    }

    pub(crate) fn note_request(&self, latency: Duration) {
        self.requests.inc();
        let us = latency.as_micros() as u64;
        self.latency_hist.observe(us);
        self.latencies_us.lock().expect("latency sink").push(us);
    }

    /// Zeroes every counter and restarts the throughput clock — the
    /// benchmark phase boundary (`QkbServer::reset_stats` also resets
    /// both cache tiers' and the session store's counters so phases
    /// never hand-subtract).
    pub(crate) fn reset(&self) {
        *self.started.lock().expect("metrics clock") = Instant::now();
        // Zeroes every registry cell in place — the pre-resolved
        // handles above (and any the registry hands out later) stay
        // valid across the reset.
        self.registry.reset();
        self.latencies_us.lock().expect("latency sink").clear();
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheCounters,
        stage1: Stage1Counters,
        component: ComponentCacheCounters,
        sessions: SessionStats,
    ) -> ServeStats {
        // Copy out under the lock, sort after releasing it: requests
        // completing during a snapshot must not stall on a 2^20-sample
        // sort inside note_request.
        let (mut samples, latency_samples_dropped) = {
            let ring = self.latencies_us.lock().expect("latency sink");
            (ring.resident(), ring.dropped())
        };
        samples.sort_unstable();
        let samples = samples;
        // Nearest-rank with clamped index: zero samples reports 0.0 for
        // every percentile (idle server, not NaN), and a single sample
        // reports itself as p50, p95 and mean alike.
        let pct = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = (((samples.len() as f64 - 1.0) * q).round() as usize).min(samples.len() - 1);
            samples[idx] as f64 / 1000.0
        };
        let mean_ms = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0
        };
        let elapsed = self.started.lock().expect("metrics clock").elapsed();
        let requests = self.requests.get();
        ServeStats {
            requests,
            elapsed,
            throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            latency_p50_ms: pct(0.50),
            latency_p95_ms: pct(0.95),
            latency_mean_ms: mean_ms,
            latency_samples: samples.len() as u64,
            latency_samples_dropped,
            cache,
            stage1,
            component,
            sessions,
            batches: self.batches.get(),
            build_rounds: self.build_rounds.get(),
            cold_builds: self.cold_builds.get(),
            assembled_builds: self.assembled_builds.get(),
            docs_built: self.docs_built.get(),
            batch_coalesced: self.batch_coalesced.get(),
            inflight_coalesced: self.inflight_coalesced.get(),
            build_timings: StageTimings {
                preprocess: Duration::from_micros(self.build_preprocess_us.get()),
                graph: Duration::from_micros(self.build_graph_us.get()),
                resolve: Duration::from_micros(self.build_resolve_us.get()),
                canonicalize: Duration::from_micros(self.build_canonicalize_us.get()),
            },
            resolve_counters: ResolveCounters {
                components: self.resolve_components.get(),
                ilp_variables: self.ilp_variables.get(),
                bnb_nodes: self.bnb_nodes.get(),
                pruned_candidates: self.pruned_candidates.get(),
                cache_hits: self.resolve_cache_hits.get(),
                cache_misses: self.resolve_cache_misses.get(),
                cache_bypass: self.resolve_cache_bypass.get(),
            },
        }
    }
}

/// A point-in-time view of the server's health.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Time since the server started.
    pub elapsed: Duration,
    /// Requests per second over the server's lifetime.
    pub throughput_rps: f64,
    /// Median queue-to-reply latency (ms).
    pub latency_p50_ms: f64,
    /// 95th-percentile queue-to-reply latency (ms).
    pub latency_p95_ms: f64,
    /// Mean queue-to-reply latency (ms).
    pub latency_mean_ms: f64,
    /// Latency samples resident in the percentile window (the
    /// percentiles above are computed over exactly this many samples;
    /// 0 means they all read 0.0 by convention).
    pub latency_samples: u64,
    /// Samples displaced from the latency window (percentiles cover the
    /// newest 2^20 samples; non-zero means the reported percentiles
    /// describe recent traffic, not the server's whole lifetime).
    pub latency_samples_dropped: u64,
    /// Fragment-cache counters (tier two: exact retrieved-set reuse).
    pub cache: CacheCounters,
    /// Per-document stage-1 cache counters (tier one: cross-query
    /// document reuse).
    pub stage1: Stage1Counters,
    /// Component resolve-cache counters (the tier below stage 1:
    /// cross-document coupling-component reuse in the NED+CR solver).
    pub component: ComponentCacheCounters,
    /// Session-store counters (session-scoped streaming KBs:
    /// live/evicted sessions, extend-vs-cold turns, streaming dedup).
    pub sessions: SessionStats,
    /// Admission batches processed.
    pub batches: u64,
    /// Grouped `build_kb` rounds executed.
    pub build_rounds: u64,
    /// Fragments built fully cold (no stage-1 artifact reused).
    pub cold_builds: u64,
    /// Fragments assembled with at least one cached stage-1 artifact.
    pub assembled_builds: u64,
    /// Documents fed through builds (assembled or computed).
    pub docs_built: u64,
    /// Requests that shared a fragment with an identical query in the
    /// same admission batch.
    pub batch_coalesced: u64,
    /// Query groups that piggybacked on another shard's in-flight build.
    pub inflight_coalesced: u64,
    /// Summed per-stage build wall clock across all cold builds.
    pub build_timings: StageTimings,
    /// Summed resolve-stage work counters (coupling components, ILP
    /// variables, branch-and-bound nodes, pruned candidates) across all
    /// stage-1 computations.
    pub resolve_counters: ResolveCounters,
}

impl ServeStats {
    /// Fragment-cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Stage-1 (per-document) cache hit rate over all lookups.
    pub fn stage1_hit_rate(&self) -> f64 {
        self.stage1.hit_rate()
    }

    /// Component resolve-cache hit rate over all lookups.
    pub fn component_hit_rate(&self) -> f64 {
        self.component.hit_rate()
    }

    /// JSON rendering for benchmark reports and dashboards.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("requests", self.requests)
            .with("elapsed_s", self.elapsed.as_secs_f64())
            .with("throughput_rps", self.throughput_rps)
            .with("latency_p50_ms", self.latency_p50_ms)
            .with("latency_p95_ms", self.latency_p95_ms)
            .with("latency_mean_ms", self.latency_mean_ms)
            .with("latency_samples", self.latency_samples)
            .with("latency_samples_dropped", self.latency_samples_dropped)
            .with("cache_hits", self.cache.hits)
            .with("cache_misses", self.cache.misses)
            .with("cache_evictions", self.cache.evictions)
            .with("cache_entries", self.cache.entries)
            .with("cache_hit_rate", self.cache_hit_rate())
            .with("stage1_hits", self.stage1.hits)
            .with("stage1_misses", self.stage1.misses)
            .with("stage1_evictions", self.stage1.evictions)
            .with("stage1_entries", self.stage1.entries)
            .with("stage1_bytes", self.stage1.approx_bytes)
            .with("stage1_capacity_bytes", self.stage1.capacity_bytes)
            .with("stage1_hit_rate", self.stage1_hit_rate())
            .with("component_hits", self.component.hits)
            .with("component_misses", self.component.misses)
            .with("component_evictions", self.component.evictions)
            .with("component_entries", self.component.entries)
            .with("component_bytes", self.component.approx_bytes)
            .with("component_capacity_bytes", self.component.capacity_bytes)
            .with("component_hit_rate", self.component_hit_rate())
            .with("sessions", self.sessions.to_json())
            .with("batches", self.batches)
            .with("build_rounds", self.build_rounds)
            .with("cold_builds", self.cold_builds)
            .with("assembled_builds", self.assembled_builds)
            .with("docs_built", self.docs_built)
            .with("batch_coalesced", self.batch_coalesced)
            .with("inflight_coalesced", self.inflight_coalesced)
            .with("build_timings", self.build_timings.to_json())
            .with("resolve_counters", self.resolve_counters.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_samples_and_counts_displaced() {
        let mut ring = LatencyRing::with_capacity(4);
        for v in 1..=4 {
            ring.push(v);
        }
        assert_eq!(ring.dropped(), 0);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![1, 2, 3, 4]);
        // Overflow: the two oldest are displaced, the window slides.
        ring.push(5);
        ring.push(6);
        assert_eq!(ring.dropped(), 2);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![3, 4, 5, 6]);
        ring.clear();
        assert_eq!((ring.resident().len(), ring.dropped()), (0, 0));
    }

    #[test]
    fn ring_wraps_repeatedly_without_growing() {
        let mut ring = LatencyRing::with_capacity(3);
        for v in 0..100 {
            ring.push(v);
        }
        assert_eq!(ring.resident().len(), 3);
        assert_eq!(ring.dropped(), 97);
        let mut resident = ring.resident();
        resident.sort_unstable();
        assert_eq!(resident, vec![97, 98, 99]);
    }

    #[test]
    fn snapshot_surfaces_dropped_count() {
        let metrics = ServeMetrics::new();
        metrics.note_request(Duration::from_micros(100));
        let stats = metrics.snapshot(
            CacheCounters::default(),
            Stage1Counters::default(),
            ComponentCacheCounters::default(),
            SessionStats::default(),
        );
        assert_eq!(stats.latency_samples_dropped, 0);
        assert_eq!(stats.to_json()["latency_samples_dropped"], 0u64);
    }

    fn plain_snapshot(metrics: &ServeMetrics) -> ServeStats {
        metrics.snapshot(
            CacheCounters::default(),
            Stage1Counters::default(),
            ComponentCacheCounters::default(),
            SessionStats::default(),
        )
    }

    #[test]
    fn percentiles_with_zero_samples_read_zero() {
        let metrics = ServeMetrics::new();
        let stats = plain_snapshot(&metrics);
        assert_eq!(stats.latency_samples, 0);
        assert_eq!(stats.latency_p50_ms, 0.0);
        assert_eq!(stats.latency_p95_ms, 0.0);
        assert_eq!(stats.latency_mean_ms, 0.0);
        assert_eq!(stats.to_json()["latency_samples"], 0u64);
    }

    #[test]
    fn percentiles_with_one_sample_report_it_everywhere() {
        let metrics = ServeMetrics::new();
        metrics.note_request(Duration::from_micros(2500));
        let stats = plain_snapshot(&metrics);
        assert_eq!(stats.latency_samples, 1);
        assert_eq!(stats.latency_p50_ms, 2.5);
        assert_eq!(stats.latency_p95_ms, 2.5);
        assert_eq!(stats.latency_mean_ms, 2.5);
    }

    #[test]
    fn registry_mirrors_counters_and_reset_zeroes_everything() {
        let metrics = ServeMetrics::new();
        metrics.note_batch(5, 3);
        metrics.note_request(Duration::from_micros(10));
        metrics.note_inflight_coalesced();
        let snap = metrics.registry().snapshot();
        assert_eq!(snap.counter("serve_requests_total"), Some(1));
        assert_eq!(snap.counter("serve_batches_total"), Some(1));
        assert_eq!(snap.counter("serve_batch_coalesced_total"), Some(2));
        assert_eq!(snap.counter("serve_inflight_coalesced_total"), Some(1));
        assert_eq!(snap.histogram("serve_request_latency_us").unwrap().count, 1);
        let text = snap.to_prometheus_text();
        assert!(text.contains("serve_requests_total 1"));
        assert!(text.contains("serve_request_latency_us_count 1"));

        metrics.reset();
        assert!(metrics.registry().snapshot().is_zero());
        let stats = plain_snapshot(&metrics);
        assert_eq!(
            (stats.requests, stats.batches, stats.latency_samples),
            (0, 0, 0)
        );
        // Pre-reset handles keep working after the in-place zeroing.
        metrics.note_request(Duration::from_micros(7));
        assert_eq!(plain_snapshot(&metrics).requests, 1);
    }
}
