//! The sharded KB-fragment cache.
//!
//! A bounded LRU ([`qkb_util::LruCache`]) split across independently
//! locked shards, keyed by the fingerprint of a query's retrieved-document
//! set. Overlapping queries — or repeats of a popular one — reuse the
//! constructed [`KbFragment`] instead of re-running extraction, which is
//! where the serving layer's throughput win comes from.

use crate::engine::KbFragment;
use qkb_util::LruCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache counter snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Lookups that found a fragment.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fragments evicted by capacity pressure.
    pub evictions: u64,
    /// Fragments currently cached.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

impl CacheCounters {
    /// Hits over lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, bounded, counted LRU over `Arc<KbFragment>`.
pub struct FragmentCache {
    shards: Vec<Mutex<LruCache<u64, Arc<KbFragment>>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FragmentCache {
    /// A cache holding at most `capacity` fragments, spread over
    /// `shards` independently locked LRUs (capacity 0 disables caching;
    /// shards are clamped to `1..=capacity.max(1)`). Per-shard capacities
    /// sum exactly to `capacity`; a key-skewed workload can therefore
    /// evict before the *total* is reached — the price of lock sharding.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let (base, extra) = (capacity / shards, capacity % shards);
        Self {
            shards: (0..shards)
                .map(|i| Mutex::new(LruCache::new(base + usize::from(i < extra))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// True when the configured capacity is non-zero.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    fn shard(&self, key: u64) -> &Mutex<LruCache<u64, Arc<KbFragment>>> {
        // Keys are already fingerprints; fold the high bits so shard
        // choice uses entropy the per-shard LRU map doesn't.
        &self.shards[((key >> 32) ^ key) as usize % self.shards.len()]
    }

    /// Counted lookup; promotes the fragment on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<KbFragment>> {
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard")
            .get(&key)
            .cloned();
        match got {
            Some(f) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(f)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Uncounted lookup (used inside the coalescing claim; the caller's
    /// fast path already counted this logical lookup — see
    /// [`FragmentCache::reclassify_miss_as_hit`] for the race case).
    pub fn peek_get(&self, key: u64) -> Option<Arc<KbFragment>> {
        self.shard(key)
            .lock()
            .expect("cache shard")
            .get(&key)
            .cloned()
    }

    /// Corrects the counters when a lookup counted as a miss turned out
    /// to be a hit after all (another shard published the fragment
    /// between the counted fast-path miss and the in-flight claim).
    pub fn reclassify_miss_as_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// Inserts a fragment, counting any capacity eviction.
    pub fn insert(&self, key: u64, fragment: Arc<KbFragment>) {
        let evicted = self
            .shard(key)
            .lock()
            .expect("cache shard")
            .insert(key, fragment);
        if let Some((old_key, _)) = evicted {
            // Replacing the same key is a refresh, not an eviction.
            if old_key != key {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Cached fragments right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::OnTheFlyKb;
    use qkbfly::StageTimings;

    fn frag() -> Arc<KbFragment> {
        Arc::new(KbFragment {
            kb: OnTheFlyKb::new(),
            timings: StageTimings::default(),
            n_docs: 0,
        })
    }

    #[test]
    fn counts_hits_misses_evictions() {
        let c = FragmentCache::new(1, 4);
        assert!(c.get(1).is_none());
        c.insert(1, frag());
        assert!(c.get(1).is_some());
        c.insert(2, frag()); // evicts 1 (single slot after clamping)
        assert!(c.get(1).is_none());
        let k = c.counters();
        assert_eq!(k.hits, 1);
        assert_eq!(k.misses, 2);
        assert_eq!(k.evictions, 1);
        assert_eq!(k.entries, 1);
        assert!((k.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = FragmentCache::new(0, 8);
        assert!(!c.is_enabled());
        c.insert(7, frag());
        assert!(c.get(7).is_none());
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn refresh_same_key_is_not_an_eviction() {
        let c = FragmentCache::new(2, 1);
        c.insert(5, frag());
        c.insert(5, frag());
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.len(), 1);
    }
}
