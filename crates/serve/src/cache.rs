//! The sharded KB-fragment cache (tier two of the serving cache).
//!
//! A bounded LRU ([`qkb_util::LruCache`] behind the crate's shared
//! sharded-store machinery) keyed by the fingerprint of a query's
//! retrieved-document set. Repeats of a popular query — or different
//! questions that retrieve the same documents — reuse the constructed
//! [`KbFragment`] without any rebuild; queries whose sets merely
//! *overlap* fall through to the per-document stage-1 tier
//! ([`crate::Stage1Cache`]).

use crate::engine::KbFragment;
use crate::sharded::ShardedLru;
use std::sync::Arc;

/// Cache counter snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Lookups that found a fragment.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fragments evicted by capacity pressure.
    pub evictions: u64,
    /// Fragments currently cached.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

impl CacheCounters {
    /// Hits over lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, bounded, counted LRU over `Arc<KbFragment>`.
pub struct FragmentCache {
    store: ShardedLru<Arc<KbFragment>>,
    capacity: usize,
}

impl FragmentCache {
    /// A cache holding at most `capacity` fragments, spread over
    /// `shards` independently locked LRUs (capacity 0 disables caching;
    /// shards are clamped to `1..=capacity.max(1)`). Per-shard capacities
    /// sum exactly to `capacity`; a key-skewed workload can therefore
    /// evict before the *total* is reached — the price of lock sharding.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self {
            store: ShardedLru::entry_bounded(capacity, shards),
            capacity,
        }
    }

    /// True when the configured capacity is non-zero.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Counted lookup; promotes the fragment on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<KbFragment>> {
        self.store.get(key)
    }

    /// Uncounted, non-promoting lookup (used inside the coalescing claim;
    /// the caller's fast path already counted this logical lookup and
    /// promoted on its hit — see [`FragmentCache::reclassify_miss_as_hit`]
    /// for the race case). Does **not** perturb the LRU order.
    pub fn peek_get(&self, key: u64) -> Option<Arc<KbFragment>> {
        self.store.peek(key)
    }

    /// Corrects the counters when a lookup counted as a miss turned out
    /// to be a hit after all (another shard published the fragment
    /// between the counted fast-path miss and the in-flight claim).
    pub fn reclassify_miss_as_hit(&self) {
        self.store.reclassify_miss_as_hit()
    }

    /// Inserts a fragment, counting capacity evictions (a same-key
    /// replacement is a refresh and a bounced-back insert lost nothing
    /// cached; neither counts).
    pub fn insert(&self, key: u64, fragment: Arc<KbFragment>) {
        self.store.insert_weighted(key, fragment, 1);
    }

    /// Cached fragments right now.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes the hit/miss/eviction counters; cached fragments stay.
    pub fn reset_counters(&self) {
        self.store.reset_counters()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        let totals = self.store.totals();
        CacheCounters {
            hits: totals.hits,
            misses: totals.misses,
            evictions: totals.evictions,
            entries: totals.entries,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::OnTheFlyKb;
    use qkbfly::StageTimings;

    fn frag() -> Arc<KbFragment> {
        Arc::new(KbFragment {
            kb: OnTheFlyKb::new(),
            timings: StageTimings::default(),
            n_docs: 0,
        })
    }

    #[test]
    fn counts_hits_misses_evictions() {
        let c = FragmentCache::new(1, 4);
        assert!(c.get(1).is_none());
        c.insert(1, frag());
        assert!(c.get(1).is_some());
        c.insert(2, frag()); // evicts 1 (single slot after clamping)
        assert!(c.get(1).is_none());
        let k = c.counters();
        assert_eq!(k.hits, 1);
        assert_eq!(k.misses, 2);
        assert_eq!(k.evictions, 1);
        assert_eq!(k.entries, 1);
        assert!((k.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = FragmentCache::new(0, 8);
        assert!(!c.is_enabled());
        c.insert(7, frag());
        assert!(c.get(7).is_none());
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn refresh_same_key_is_not_an_eviction() {
        let c = FragmentCache::new(2, 1);
        c.insert(5, frag());
        c.insert(5, frag());
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_get_does_not_perturb_lru_order() {
        let c = FragmentCache::new(2, 1);
        c.insert(1, frag());
        c.insert(2, frag());
        // A promoting get would make key 1 most-recent; peek must not.
        assert!(c.peek_get(1).is_some());
        c.insert(3, frag());
        assert!(
            c.peek_get(1).is_none(),
            "key 1 stayed least-recent after the peek, so it must be evicted"
        );
        assert!(c.peek_get(2).is_some());
        // Contrast: a real get promotes.
        assert!(c.get(2).is_some());
        c.insert(4, frag());
        assert!(c.peek_get(2).is_some(), "promoted key must survive");
        assert!(c.peek_get(3).is_none(), "unpromoted key must be evicted");
    }
}
