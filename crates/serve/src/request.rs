//! Request and response types of the serving front-end.

use qkb_util::text::normalize;
use std::time::Duration;

/// What kind of knowledge the client is asking for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A natural-language question; the response carries ranked answers.
    Question,
    /// An entity seed (a name); the response carries the fragment's facts
    /// about that entity, rendered in the paper's notation.
    EntitySeed,
}

/// One query accepted by [`crate::QkbServer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Request kind.
    pub kind: QueryKind,
    /// Question text or entity name.
    pub text: String,
}

impl QueryRequest {
    /// A natural-language question request.
    pub fn question(text: impl Into<String>) -> Self {
        Self {
            kind: QueryKind::Question,
            text: text.into(),
        }
    }

    /// An entity-seed request.
    pub fn entity(name: impl Into<String>) -> Self {
        Self {
            kind: QueryKind::EntitySeed,
            text: name.into(),
        }
    }

    /// The coalescing identity of this request: kind-tagged normalized
    /// text, so "Who SHOT Keith Scott?" and "who shot keith scott" share
    /// one in-flight build while a question and an entity seed with the
    /// same surface do not.
    pub fn normalized_key(&self) -> String {
        let tag = match self.kind {
            QueryKind::Question => 'q',
            QueryKind::EntitySeed => 'e',
        };
        format!("{tag}:{}", normalize(&self.text))
    }
}

/// How the server obtained the KB behind a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// The fragment was built from scratch for this batch.
    ColdBuild,
    /// The fragment came out of the fragment cache.
    CacheHit,
    /// The request piggybacked on another worker's in-flight build.
    Coalesced,
    /// The request started a session: its KB was empty before this turn.
    SessionCold,
    /// The request extended an existing session KB incrementally.
    SessionExtended,
    /// The request started a session by **forking** a frozen, shared KB
    /// prefix from the prefix forest (same opening document sequence as
    /// an earlier session) instead of rebuilding it.
    SessionForked,
}

/// The server's reply to one [`QueryRequest`].
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Ranked answers (questions) or rendered facts (entity seeds).
    pub answers: Vec<String>,
    /// How the backing KB was obtained.
    pub served: Served,
    /// Fingerprint of the retrieved-document set (the fragment-cache key).
    pub fragment_key: u64,
    /// Documents behind the answering KB (for session responses: the
    /// whole accumulated session KB, not just this turn's retrieval).
    pub n_docs: usize,
    /// Facts in the answering KB.
    pub n_facts: usize,
    /// Queue-to-reply wall clock.
    pub latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_key_folds_case_and_tags_kind() {
        let a = QueryRequest::question("Who shot Keith Scott?");
        let b = QueryRequest::question("who shot KEITH SCOTT?");
        assert_eq!(a.normalized_key(), b.normalized_key());
        let e = QueryRequest::entity("who shot keith scott");
        assert_ne!(a.normalized_key(), e.normalized_key());
    }
}
