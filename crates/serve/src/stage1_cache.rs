//! The per-document stage-1 cache — tier one of the serving layer's
//! two-tier cache.
//!
//! The fragment cache (tier two) only helps when a query's retrieved
//! document set matches a cached set *exactly*. Overlapping-but-distinct
//! queries re-paid stage 1 (preprocessing, semantic graph, joint NED+CR)
//! for every shared document — the dominant cost per `StageTimings`. This
//! cache memoizes the stage-1 artifact per *document*, keyed by
//! `fingerprint64` of the document text, so a fragment for a new document
//! set is assembled from cached artifacts plus stage-1 runs for the true
//! misses only.
//!
//! Capacity is bounded in **approximate bytes** ([`DocStage1::approx_bytes`]
//! is the eviction weight): artifacts vary by an order of magnitude with
//! document length, so counting entries would make the bound meaningless.
//! The store is split over independently locked shards like the fragment
//! cache.
//!
//! Determinism: stage 1 is a pure function of the document text under a
//! fixed configuration, so serving a memoized artifact is
//! indistinguishable — byte for byte — from recomputing it
//! (`Qkbfly::assemble_from` contract; enforced by `crates/core`'s
//! property tests).

use crate::sharded::ShardedLru;
use qkb_util::fingerprint64;
use qkbfly::{DocStage1, Qkbfly, Stage1Provider};
use std::sync::Arc;

/// Stage-1 cache counter snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stage1Counters {
    /// Documents whose artifact was served from cache.
    pub hits: u64,
    /// Documents whose artifact had to be computed.
    pub misses: u64,
    /// Artifacts evicted by byte-capacity pressure.
    pub evictions: u64,
    /// Artifacts currently cached.
    pub entries: usize,
    /// Approximate bytes currently held.
    pub approx_bytes: u64,
    /// Configured byte capacity across shards.
    pub capacity_bytes: u64,
}

impl Stage1Counters {
    /// Hits over lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, byte-bounded, counted LRU over `Arc<DocStage1>` keyed by
/// the document-text fingerprint. Implements [`Stage1Provider`], so the
/// build entry points (`build_kb_with`, `build_kb_grouped_with`) use it
/// directly as their compute-or-lookup source.
pub struct Stage1Cache {
    store: ShardedLru<Arc<DocStage1>>,
    capacity_bytes: u64,
}

impl Stage1Cache {
    /// A cache holding at most ~`capacity_bytes` of stage-1 artifacts,
    /// spread over `shards` independently locked byte-weighted LRUs
    /// (capacity 0 disables caching; shards are clamped to at least 1).
    /// Per-shard budgets sum to `capacity_bytes`; a key-skewed workload
    /// can evict before the total is reached — the price of lock
    /// sharding, as with the fragment cache.
    pub fn new(capacity_bytes: u64, shards: usize) -> Self {
        Self {
            store: ShardedLru::weight_bounded(capacity_bytes, shards),
            capacity_bytes,
        }
    }

    /// True when the configured capacity is non-zero.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// The cache key for one document text.
    pub fn key_of(text: &str) -> u64 {
        fingerprint64(text.as_bytes())
    }

    /// Counted lookup; promotes the artifact on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<DocStage1>> {
        self.store.get(key)
    }

    /// Uncounted presence probe that does not perturb the LRU order
    /// (the server uses it to classify a build as assembled-vs-cold
    /// without double-counting lookups).
    pub fn contains_text(&self, text: &str) -> bool {
        self.store.peek(Self::key_of(text)).is_some()
    }

    /// Inserts an artifact weighted by its approximate byte size,
    /// counting capacity evictions (an oversized artifact that bounces
    /// straight back out is not counted — nothing cached was lost).
    pub fn insert(&self, key: u64, stage1: Arc<DocStage1>) {
        let weight = stage1.approx_bytes() as u64;
        self.store.insert_weighted(key, stage1, weight);
    }

    /// Artifacts cached right now.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes the hit/miss/eviction counters; cached artifacts stay.
    pub fn reset_counters(&self) {
        self.store.reset_counters()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> Stage1Counters {
        let totals = self.store.totals();
        Stage1Counters {
            hits: totals.hits,
            misses: totals.misses,
            evictions: totals.evictions,
            entries: totals.entries,
            approx_bytes: totals.weight,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

impl Stage1Provider for Stage1Cache {
    fn provide(&self, qkb: &Qkbfly, text: &str) -> Arc<DocStage1> {
        let mut span = qkb.recorder().span("stage1_doc");
        if !self.is_enabled() {
            // Disabled: pure compute, no counter noise.
            span.field("cache", "disabled");
            return Arc::new(qkb.process_doc_stage1(text));
        }
        let key = Self::key_of(text);
        if let Some(hit) = self.get(key) {
            span.field("cache", "hit");
            return hit;
        }
        span.field("cache", "miss");
        // Two shards racing on the same fresh document both compute; the
        // artifacts are identical (stage 1 is pure), so the double work is
        // benign and the second insert is a same-key refresh.
        let computed = Arc::new(qkb.process_doc_stage1(text));
        self.insert(key, computed.clone());
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::{EntityRepository, PatternRepository};

    fn tiny_system() -> Qkbfly {
        Qkbfly::new(
            EntityRepository::new(),
            PatternRepository::standard(),
            qkb_kb::BackgroundStats::empty(),
        )
    }

    #[test]
    fn provide_computes_once_per_document() {
        let qkb = tiny_system();
        let cache = Stage1Cache::new(64 << 20, 4);
        let before = qkb.counters().stage1_computed();
        let a = cache.provide(&qkb, "Ada Lovelace wrote the first program.");
        let b = cache.provide(&qkb, "Ada Lovelace wrote the first program.");
        assert_eq!(qkb.counters().stage1_computed() - before, 1);
        assert!(Arc::ptr_eq(&a, &b), "the hit must share the artifact");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!(c.approx_bytes > 0);
        assert_eq!(c.entries, 1);
    }

    #[test]
    fn zero_capacity_disables_without_counting() {
        let qkb = tiny_system();
        let cache = Stage1Cache::new(0, 4);
        assert!(!cache.is_enabled());
        let _ = cache.provide(&qkb, "Some document.");
        let _ = cache.provide(&qkb, "Some document.");
        assert_eq!(qkb.counters().stage1_computed(), 2);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (0, 0, 0));
    }

    #[test]
    fn byte_pressure_evicts_cold_documents() {
        let qkb = tiny_system();
        let probe = Arc::new(qkb.process_doc_stage1("A short probe document."));
        let one_doc = probe.approx_bytes() as u64;
        // Room for ~2 artifacts of this size in a single shard.
        let cache = Stage1Cache::new(one_doc * 2 + one_doc / 2, 1);
        for text in ["Doc one here.", "Doc two here.", "Doc three here."] {
            let _ = cache.provide(&qkb, text);
        }
        let c = cache.counters();
        assert!(c.evictions >= 1, "counters: {c:?}");
        assert!(c.approx_bytes <= c.capacity_bytes, "counters: {c:?}");
        assert!(cache.len() < 3);
    }
}
