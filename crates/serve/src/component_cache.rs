//! The component resolve cache — the serving layer's middle cache tier.
//!
//! Tier layering: the fragment cache memoizes whole *query fragments*
//! (exact document-set match), the stage-1 cache memoizes per-*document*
//! artifacts (exact text match), and this tier memoizes solved
//! *coupling components* of the joint NED+CR problem — the unit that
//! recurs even across documents that are merely similar (syndicated
//! boilerplate, edited articles, shared infoboxes). A fresh document
//! that shares components with anything previously resolved skips the
//! solver for exactly those components.
//!
//! The store is the same sharded byte-bounded LRU as the stage-1 tier;
//! the payloads are `qkbfly::CachedComponent` entries (canonical
//! encoding + solved assignment). Collision safety lives in `core`: a
//! hit is only replayed after an exact byte comparison of the canonical
//! encoding, and [`ResolveCacheProvider::reject`] lets `core` reclassify
//! a counted store-level hit as a miss when that re-check fails.
//!
//! One instance is shared process-wide across all serve shards and all
//! sessions (the provider keys abstract over the process's entity and
//! symbol interning, which every handle cloned from one `QaSystem`
//! shares) — cross-session component reuse is free.

use crate::sharded::ShardedLru;
use qkbfly::{CachedComponent, ResolveCacheProvider};
use std::sync::Arc;

/// Component-cache counter snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComponentCacheCounters {
    /// Components replayed from cache (exact re-check passed).
    pub hits: u64,
    /// Components that had to be solved (including re-check rejections).
    pub misses: u64,
    /// Entries evicted by byte-capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently held.
    pub approx_bytes: u64,
    /// Configured byte capacity across shards.
    pub capacity_bytes: u64,
}

impl ComponentCacheCounters {
    /// Hits over lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, byte-bounded, counted LRU over solved coupling
/// components. Implements [`ResolveCacheProvider`], so a `Qkbfly`
/// handle plugs it in with `with_resolve_cache`.
pub struct ComponentCache {
    store: ShardedLru<Arc<CachedComponent>>,
    capacity_bytes: u64,
}

impl ComponentCache {
    /// A cache holding at most ~`capacity_bytes` of solved components,
    /// spread over `shards` independently locked byte-weighted LRUs
    /// (capacity 0 disables caching; shards are clamped to at least 1).
    pub fn new(capacity_bytes: u64, shards: usize) -> Self {
        Self {
            store: ShardedLru::weight_bounded(capacity_bytes, shards),
            capacity_bytes,
        }
    }

    /// True when the configured capacity is non-zero.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Entries cached right now.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes the hit/miss/eviction counters; cached entries stay.
    pub fn reset_counters(&self) {
        self.store.reset_counters()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ComponentCacheCounters {
        let totals = self.store.totals();
        ComponentCacheCounters {
            hits: totals.hits,
            misses: totals.misses,
            evictions: totals.evictions,
            entries: totals.entries,
            approx_bytes: totals.weight,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

impl ResolveCacheProvider for ComponentCache {
    fn get(&self, key: u64) -> Option<Arc<CachedComponent>> {
        self.store.get(key)
    }

    fn insert(&self, key: u64, entry: Arc<CachedComponent>) {
        let weight = entry.approx_bytes() as u64;
        self.store.insert_weighted(key, entry, weight);
    }

    fn reject(&self) {
        self.store.reclassify_hit_as_miss();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qkb_kb::{EntityRepository, PatternRepository};
    use qkbfly::Qkbfly;
    use std::sync::Arc;

    fn tiny_system() -> Qkbfly {
        Qkbfly::new(
            EntityRepository::new(),
            PatternRepository::standard(),
            qkb_kb::BackgroundStats::empty(),
        )
    }

    #[test]
    fn resolve_through_the_tier_hits_on_repeat_components() {
        let cache = Arc::new(ComponentCache::new(32 << 20, 4));
        let qkb = tiny_system().with_resolve_cache(cache.clone());
        let _ = qkb.process_doc_stage1("Ada Lovelace wrote the first program.");
        let cold = cache.counters();
        assert!(cold.misses > 0, "cold doc must miss: {cold:?}");
        assert_eq!(cold.hits, 0);
        assert!(cold.approx_bytes > 0);
        let _ = qkb.process_doc_stage1("Ada Lovelace wrote the first program.");
        let warm = cache.counters();
        assert_eq!(warm.misses, cold.misses, "repeat doc must not miss");
        assert_eq!(warm.hits, cold.misses, "every component replays");
        let resolve = qkb.counters().resolve();
        assert_eq!(resolve.cache_hits, warm.hits);
        assert_eq!(resolve.cache_misses, warm.misses);
        assert_eq!(resolve.cache_bypass, 0);
    }

    #[test]
    fn zero_capacity_reports_disabled() {
        let cache = ComponentCache::new(0, 4);
        assert!(!cache.is_enabled());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (0, 0, 0));
        assert!((c.hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    /// Records the keys `core` stores, so the test can later drive a
    /// store-level hit on a known-resident entry.
    struct KeySpy {
        inner: Arc<ComponentCache>,
        keys: std::sync::Mutex<Vec<u64>>,
    }

    impl ResolveCacheProvider for KeySpy {
        fn get(&self, key: u64) -> Option<Arc<CachedComponent>> {
            self.inner.get(key)
        }

        fn insert(&self, key: u64, entry: Arc<CachedComponent>) {
            self.keys.lock().expect("spy lock").push(key);
            self.inner.insert(key, entry);
        }

        fn reject(&self) {
            self.inner.reject();
        }
    }

    #[test]
    fn reject_reclassifies_a_counted_hit_as_a_miss() {
        let tier = Arc::new(ComponentCache::new(1 << 20, 1));
        let spy = Arc::new(KeySpy {
            inner: tier.clone(),
            keys: std::sync::Mutex::new(Vec::new()),
        });
        let qkb = tiny_system().with_resolve_cache(spy.clone());
        let _ = qkb.process_doc_stage1("Ada Lovelace wrote the first program.");
        let key = *spy
            .keys
            .lock()
            .expect("spy lock")
            .first()
            .expect("at least one component cached");
        let before = tier.counters();
        // A store-level hit whose structural re-check fails is counted
        // as a hit by the store, then reclassified by reject(): the net
        // effect must be one additional miss and no additional hit.
        assert!(tier.get(key).is_some());
        tier.reject();
        let after = tier.counters();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses + 1);
    }
}
