//! The engine abstraction the server runs on, and its [`QaSystem`] glue.
//!
//! The server owns scheduling (sharding, coalescing, caching, batching)
//! and delegates the three semantic steps of the paper's query-time path
//! to an engine: retrieve documents for a query, build a KB fragment from
//! them, extract answers from a fragment. `qkb_qa::QaSystem` is the
//! production engine; tests can supply stubs.

use crate::request::{QueryKind, QueryRequest};
use qkb_kb::OnTheFlyKb;
use qkb_qa::QaSystem;
use qkbfly::{BuildResult, Qkbfly, StageTimings};

/// One constructed on-the-fly KB with its build diagnostics — the unit the
/// fragment cache stores and overlapping queries share.
pub struct KbFragment {
    /// The canonicalized KB.
    pub kb: OnTheFlyKb,
    /// Per-stage build wall clock. For fragments assembled from cached
    /// stage-1 artifacts the preprocess/graph/resolve slots carry the
    /// *original* compute cost (the artifact's provenance), not this
    /// build's wall clock — only canonicalize was paid again.
    pub timings: StageTimings,
    /// Documents the fragment was built from.
    pub n_docs: usize,
}

impl KbFragment {
    /// Wraps one build (cold, grouped or assembled) as a cacheable
    /// fragment.
    pub fn from_result(result: BuildResult<'_>) -> Self {
        Self {
            n_docs: result.per_doc.len(),
            kb: result.kb,
            timings: result.timings,
        }
    }
}

/// The semantic backend of the server.
///
/// All methods take `&self` and are called concurrently from every worker
/// shard; engines must be internally immutable at serve time (the QKBfly
/// repositories already are — see ARCHITECTURE.md).
pub trait QueryEngine: Send + Sync + 'static {
    /// The QKBfly handle fragments are built with. Worker shards clone it
    /// (cheap, `Arc`-shared repositories) and apply their own
    /// `with_parallelism` override, and its shared [`qkbfly::BuildCounters`]
    /// are the test hook proving coalescing.
    fn qkbfly(&self) -> &Qkbfly;

    /// Top-k document ids for a query (retrieval step).
    fn retrieve(&self, request: &QueryRequest) -> Vec<usize>;

    /// Full texts of the given documents, in the given order. Their
    /// fingerprint is the fragment-cache key.
    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String>;

    /// The fragment-cache key: a stable fingerprint of the documents'
    /// texts. Must equal `fingerprint_seq(doc_texts(doc_ids))`; engines
    /// should override to avoid materializing the texts on the cache-hit
    /// fast path.
    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        qkb_util::fingerprint_seq(self.doc_texts(doc_ids).iter())
    }

    /// Answers for a request against any constructed on-the-fly KB —
    /// a fragment's, or a session's accumulated one. Must be
    /// deterministic in `(request, kb)` — the cache-hit/cold-build and
    /// session/cold-union byte-identity contracts both rest on this.
    fn answer_kb(&self, request: &QueryRequest, kb: &OnTheFlyKb) -> Vec<String>;

    /// Answers for a request against a built fragment (the fragment
    /// path's convenience over [`QueryEngine::answer_kb`]).
    fn answer(&self, request: &QueryRequest, fragment: &KbFragment) -> Vec<String> {
        self.answer_kb(request, &fragment.kb)
    }
}

/// Engines can be shared: several servers (e.g. a baseline and a cached
/// configuration under benchmark) may serve from one loaded system.
impl<E: QueryEngine> QueryEngine for std::sync::Arc<E> {
    fn qkbfly(&self) -> &Qkbfly {
        (**self).qkbfly()
    }

    fn retrieve(&self, request: &QueryRequest) -> Vec<usize> {
        (**self).retrieve(request)
    }

    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String> {
        (**self).doc_texts(doc_ids)
    }

    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        (**self).doc_fingerprint(doc_ids)
    }

    fn answer_kb(&self, request: &QueryRequest, kb: &OnTheFlyKb) -> Vec<String> {
        (**self).answer_kb(request, kb)
    }

    fn answer(&self, request: &QueryRequest, fragment: &KbFragment) -> Vec<String> {
        (**self).answer(request, fragment)
    }
}

impl QueryEngine for QaSystem {
    fn qkbfly(&self) -> &Qkbfly {
        QaSystem::qkbfly(self)
    }

    fn retrieve(&self, request: &QueryRequest) -> Vec<usize> {
        self.retrieve_docs(&request.text)
    }

    fn doc_texts(&self, doc_ids: &[usize]) -> Vec<String> {
        QaSystem::doc_texts(self, doc_ids)
    }

    fn doc_fingerprint(&self, doc_ids: &[usize]) -> u64 {
        QaSystem::doc_fingerprint(self, doc_ids)
    }

    fn answer_kb(&self, request: &QueryRequest, kb: &OnTheFlyKb) -> Vec<String> {
        match request.kind {
            QueryKind::Question => self.answer_in_kb(&request.text, kb),
            QueryKind::EntitySeed => kb
                .search(
                    Some(&request.text),
                    None,
                    None,
                    self.qkbfly().repo(),
                    self.qkbfly().patterns(),
                )
                .into_iter()
                .map(|f| kb.render_fact(f, self.qkbfly().patterns()))
                .collect(),
        }
    }
}

// Fragments are shared across shards through the cache; the engine is
// shared by every worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KbFragment>();
    assert_send_sync::<QaSystem>();
};
