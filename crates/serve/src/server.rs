//! The sharded serving front-end.
//!
//! ```text
//!  clients ──► admission queue ──► N worker shards (cloned Qkbfly handle each)
//!                  │                   │
//!                  │ batch window      ├─ group batch by normalized query
//!                  │ (time/count)      ├─ fragment cache?  ── hit ──► answer
//!                  ▼                   ├─ in-flight table? ── wait ─► answer
//!            [j1 j2 j3 …]             └─ one grouped build_kb for all misses
//! ```
//!
//! Scheduling properties:
//! * **admission batching** — a worker drains up to `batch_max` queued
//!   requests within `batch_window` of the first, then builds every missing
//!   fragment in **one** `build_kb_grouped` call, sharing PR 1's
//!   per-document fan-out across distinct queries;
//! * **request coalescing** — identical normalized queries in one batch
//!   collapse to a single group, and a group whose fragment is already
//!   being built by another shard waits on that build instead of starting
//!   a redundant one (a global in-flight table keyed like the cache);
//! * **fragment reuse** — the sharded LRU [`FragmentCache`] is keyed by
//!   the fingerprint of the retrieved-document set, so *different*
//!   questions that retrieve the same documents share one fragment;
//! * **incremental construction** — a per-document stage-1 cache
//!   ([`Stage1Cache`], byte-bounded) sits in front of the fragment
//!   cache: a fragment miss whose documents overlap earlier queries is
//!   *assembled* from memoized stage-1 artifacts, running the expensive
//!   per-document phase only for documents never seen before;
//! * **determinism** — fragments are built by the deterministic grouped
//!   build (assembled fragments are byte-identical to cold ones) and
//!   answers are a pure function of `(request, fragment)`, so a
//!   cache-hit or assembled answer is byte-identical to a cold-build
//!   answer at any shard count.

use crate::cache::FragmentCache;
use crate::component_cache::ComponentCache;
use crate::engine::{KbFragment, QueryEngine};
use crate::request::{QueryRequest, QueryResponse, Served};
use crate::stage1_cache::Stage1Cache;
use crate::stats::{ServeMetrics, ServeStats};
use qkb_obs::{OpenSpan, Recorder};
use qkb_session::{ForestConfig, SessionConfig, SessionManager};
use qkb_util::FxHashMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One committed session turn, as observed by a [`TurnLog`].
///
/// The fields are exactly what a write-ahead journal needs to replay the
/// turn after a restart: the session, the turn's sequence number within
/// it, whether the session KB was empty before the turn (a *cold* record
/// resets the session's replayable history — everything before it
/// describes a KB that no longer exists), the retrieved document ids and
/// the fingerprint of their texts (the replay-time staleness check).
#[derive(Clone, Copy, Debug)]
pub struct LoggedTurn<'a> {
    /// The session the turn extended.
    pub session_id: &'a str,
    /// 1-based turn sequence number within the session.
    pub turn: u64,
    /// True when the session KB was empty before this turn.
    pub cold: bool,
    /// The turn's retrieved document ids, in retrieval order.
    pub doc_ids: &'a [usize],
    /// `fingerprint_seq` of the documents' texts.
    pub docs_fingerprint: u64,
}

/// Observer of committed session turns — the durability hook.
///
/// [`ServeConfig::turn_log`] attaches one to the server; the shard calls
/// it **while still holding the session's slot lock**, immediately after
/// the extend commits. That ordering is the journal's soundness
/// argument: concurrent turns on one session serialize on the slot lock,
/// so the log's append order equals the order the documents actually
/// merged into the KB — replaying the log replays the same
/// first-arrival order and therefore the same bytes.
pub trait TurnLog: Send + Sync + 'static {
    /// Records one committed turn. Must not call back into the server.
    fn log_turn(&self, turn: &LoggedTurn<'_>);
}

/// Serving-layer configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker shards (each holds a cloned `Qkbfly` handle);
    /// `0` = one per available core, capped at 8.
    pub shards: usize,
    /// Fragment-cache capacity in fragments; `0` disables the cache.
    pub cache_capacity: usize,
    /// Lock shards inside the fragment cache.
    pub cache_shards: usize,
    /// Per-document stage-1 cache capacity in approximate bytes; `0`
    /// disables tier one (every fragment miss becomes a fully cold
    /// build — the PR 2 behavior).
    pub stage1_cache_bytes: u64,
    /// Lock shards inside the stage-1 cache.
    pub stage1_cache_shards: usize,
    /// Component resolve-cache capacity in approximate bytes; `0`
    /// disables the tier (every coupling component re-enters the
    /// solver — the PR 6 behavior). The cache is process-wide: all
    /// shards and all sessions share it, so a component solved for any
    /// request is free for every later request that contains it.
    pub component_cache_bytes: u64,
    /// Lock shards inside the component resolve cache.
    pub component_cache_shards: usize,
    /// Maximum requests drained into one admission batch.
    pub batch_max: usize,
    /// How long a worker holds a batch open after its first request.
    pub batch_window: Duration,
    /// Share in-flight builds across shards (off reproduces the
    /// redundant-build baseline for benchmarks).
    pub coalesce: bool,
    /// `QkbflyConfig::parallelism` override for each shard's builds;
    /// shards already run in parallel, so the default of 1 avoids
    /// oversubscribing cores.
    pub build_parallelism: usize,
    /// Total byte budget across all resident session KBs
    /// ([`QkbServer::query_in_session`]); exceeding it evicts
    /// least-recently-used sessions. `0` = unbounded.
    pub session_bytes: u64,
    /// Idle TTL after which a session expires (swept on access).
    /// `Duration::ZERO` = never.
    pub session_ttl: Duration,
    /// Hard cap on concurrently resident sessions; `0` = unbounded.
    pub session_max: usize,
    /// Share frozen session-KB prefixes across sessions through the
    /// process-wide prefix forest: a session opening on a document
    /// sequence another session already built forks its immutable
    /// `Arc`-shared prefix in O(1) instead of rebuilding, and
    /// `session_bytes` charges each session only its private delta.
    pub session_forest: bool,
    /// Byte budget of the prefix-forest registry (LRU beyond it); live
    /// forks keep evicted layers alive until the last fork dies.
    pub session_forest_bytes: u64,
    /// Tracing recorder every request, build and session turn reports
    /// into. The default disabled recorder costs one branch per
    /// would-be span; pass `Recorder::flight()` (or a slow-log
    /// configured one) to capture span trees for
    /// [`qkb_obs::chrome_trace`] export.
    pub recorder: Recorder,
    /// Committed-session-turn observer (`None` = no durability). The
    /// network tier attaches its write-ahead journal here; see
    /// [`TurnLog`] for the ordering contract.
    pub turn_log: Option<Arc<dyn TurnLog>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("shards", &self.shards)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("stage1_cache_bytes", &self.stage1_cache_bytes)
            .field("stage1_cache_shards", &self.stage1_cache_shards)
            .field("component_cache_bytes", &self.component_cache_bytes)
            .field("component_cache_shards", &self.component_cache_shards)
            .field("batch_max", &self.batch_max)
            .field("batch_window", &self.batch_window)
            .field("coalesce", &self.coalesce)
            .field("build_parallelism", &self.build_parallelism)
            .field("session_bytes", &self.session_bytes)
            .field("session_ttl", &self.session_ttl)
            .field("session_max", &self.session_max)
            .field("session_forest", &self.session_forest)
            .field("session_forest_bytes", &self.session_forest_bytes)
            .field("recorder", &self.recorder)
            .field("turn_log", &self.turn_log.as_ref().map(|_| "Some(..)"))
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            cache_capacity: 128,
            cache_shards: 8,
            stage1_cache_bytes: 64 << 20,
            stage1_cache_shards: 8,
            component_cache_bytes: 32 << 20,
            component_cache_shards: 8,
            batch_max: 8,
            batch_window: Duration::from_millis(2),
            coalesce: true,
            build_parallelism: 1,
            session_bytes: 256 << 20,
            session_ttl: Duration::from_secs(15 * 60),
            session_max: 1024,
            session_forest: true,
            session_forest_bytes: 64 << 20,
            recorder: Recorder::disabled(),
            turn_log: None,
        }
    }
}

impl ServeConfig {
    fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            self.shards
        } else {
            qkb_util::effective_parallelism(0).min(8)
        }
    }
}

/// One enqueued request with its reply channel.
struct Job {
    request: QueryRequest,
    key: String,
    /// `Some(session_id)` routes the job through the session path: the
    /// retrieved documents stream into that session's accumulated KB and
    /// the answer comes from it, bypassing the fragment cache.
    session: Option<String>,
    enqueued: Instant,
    /// The request's root span, opened at admission on the client thread
    /// and closed by whichever shard sends the reply. `OpenSpan::none()`
    /// when tracing is disabled.
    trace: OpenSpan,
    reply: mpsc::Sender<QueryResponse>,
}

/// A Condvar-fronted MPMC queue with batch draining.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl AdmissionQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueues a job; fails once the queue is closed.
    fn push(&self, job: Job) -> Result<(), ()> {
        let mut state = self.state.lock().expect("admission queue");
        if state.closed {
            return Err(());
        }
        state.jobs.push_back(job);
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next batch: waits for a first job, then keeps
    /// draining until `max` jobs are in hand or `window` has elapsed.
    /// Returns an empty vec only when the queue is closed and drained.
    fn pop_batch(&self, max: usize, window: Duration) -> Vec<Job> {
        let mut state = self.state.lock().expect("admission queue");
        loop {
            if let Some(first) = state.jobs.pop_front() {
                let mut batch = vec![first];
                let deadline = Instant::now() + window;
                while batch.len() < max {
                    if let Some(job) = state.jobs.pop_front() {
                        batch.push(job);
                        continue;
                    }
                    if state.closed {
                        break;
                    }
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (s, timeout) = self
                        .cond
                        .wait_timeout(state, left)
                        .expect("admission queue");
                    state = s;
                    if timeout.timed_out() && state.jobs.is_empty() {
                        break;
                    }
                }
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            state = self.cond.wait(state).expect("admission queue");
        }
    }

    fn close(&self) {
        self.state.lock().expect("admission queue").closed = true;
        self.cond.notify_all();
    }
}

/// State of one in-flight fragment build.
enum SlotState {
    /// The leader is still building.
    Pending,
    /// Built and published.
    Done(Arc<KbFragment>),
    /// The leader died (panicked) before publishing; followers must
    /// build for themselves.
    Abandoned,
}

/// One fragment build in progress somewhere in the server.
struct InFlightSlot {
    result: Mutex<SlotState>,
    ready: Condvar,
}

impl InFlightSlot {
    /// Blocks until the leader publishes; `None` means the leader died
    /// and the caller should build the fragment itself.
    fn wait(&self) -> Option<Arc<KbFragment>> {
        let mut result = self.result.lock().expect("in-flight slot");
        loop {
            match &*result {
                SlotState::Pending => {}
                SlotState::Done(frag) => return Some(frag.clone()),
                SlotState::Abandoned => return None,
            }
            result = self.ready.wait(result).expect("in-flight slot");
        }
    }
}

/// Outcome of asking the in-flight table who owns a fragment key.
enum Claim {
    /// The fragment is already cached — no build needed.
    Cached(Arc<KbFragment>),
    /// The caller owns the build.
    Leader,
    /// Another shard is building it; wait on the slot.
    Follower(Arc<InFlightSlot>),
}

/// Global registry of fragment builds in progress, keyed like the cache.
///
/// The cache check inside [`InFlightTable::claim`] and the cache insert
/// inside [`InFlightTable::publish`] both run under the table lock, so a
/// key is always either cached, in flight, or claimable — a completed
/// build can never fall between a shard's cache miss and its claim.
struct InFlightTable {
    map: Mutex<FxHashMap<u64, Arc<InFlightSlot>>>,
}

impl InFlightTable {
    fn new() -> Self {
        Self {
            map: Mutex::new(FxHashMap::default()),
        }
    }

    fn claim(&self, key: u64, cache: &FragmentCache) -> Claim {
        let mut map = self.map.lock().expect("in-flight table");
        if let Some(slot) = map.get(&key) {
            return Claim::Follower(slot.clone());
        }
        if let Some(frag) = cache.peek_get(key) {
            return Claim::Cached(frag);
        }
        map.insert(
            key,
            Arc::new(InFlightSlot {
                result: Mutex::new(SlotState::Pending),
                ready: Condvar::new(),
            }),
        );
        Claim::Leader
    }

    fn publish(&self, key: u64, fragment: Arc<KbFragment>, cache: &FragmentCache) {
        let mut map = self.map.lock().expect("in-flight table");
        cache.insert(key, fragment.clone());
        if let Some(slot) = map.remove(&key) {
            let mut result = slot.result.lock().expect("in-flight slot");
            *result = SlotState::Done(fragment);
            drop(result);
            slot.ready.notify_all();
        }
    }

    /// Releases claims whose leader is unwinding: still-pending slots
    /// flip to `Abandoned` so followers fall back to building themselves
    /// instead of waiting forever. Keys already published are no-ops.
    fn abandon(&self, keys: impl IntoIterator<Item = u64>) {
        let mut map = self.map.lock().expect("in-flight table");
        for key in keys {
            if let Some(slot) = map.remove(&key) {
                let mut result = slot.result.lock().expect("in-flight slot");
                *result = SlotState::Abandoned;
                drop(result);
                slot.ready.notify_all();
            }
        }
    }
}

struct Shared<E> {
    engine: Arc<E>,
    config: ServeConfig,
    queue: AdmissionQueue,
    cache: FragmentCache,
    stage1: Stage1Cache,
    component: Arc<ComponentCache>,
    inflight: InFlightTable,
    sessions: SessionManager,
    metrics: ServeMetrics,
}

impl<E: QueryEngine> Shared<E> {
    /// A build handle configured like a worker shard's: private
    /// parallelism knob, the server's recorder, and the process-wide
    /// component resolve cache attached when enabled.
    fn build_handle(&self) -> qkbfly::Qkbfly {
        let mut qkb = self
            .engine
            .qkbfly()
            .with_parallelism(self.config.build_parallelism)
            .with_recorder(self.config.recorder.clone());
        if self.component.is_enabled() {
            qkb = qkb.with_resolve_cache(self.component.clone());
        }
        qkb
    }

    /// `None` when the server has shut down (or a worker died with the
    /// request in hand).
    fn try_submit(&self, session: Option<String>, request: QueryRequest) -> Option<QueryResponse> {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            key: request.normalized_key(),
            request,
            session,
            enqueued: Instant::now(),
            trace: self.config.recorder.open("request"),
            reply: tx,
        };
        self.queue.push(job).ok()?;
        rx.recv().ok()
    }

    fn query(&self, request: QueryRequest) -> QueryResponse {
        self.try_submit(None, request)
            .expect("query submitted to a shut-down server")
    }

    fn query_in_session(&self, session_id: &str, request: QueryRequest) -> QueryResponse {
        self.try_submit(Some(session_id.to_string()), request)
            .expect("query submitted to a shut-down server")
    }
}

/// The sharded query-serving front-end over a [`QueryEngine`].
pub struct QkbServer<E: QueryEngine> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap cloneable submission handle for client threads.
pub struct ServeClient<E: QueryEngine> {
    shared: Arc<Shared<E>>,
}

impl<E: QueryEngine> Clone for ServeClient<E> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<E: QueryEngine> ServeClient<E> {
    /// Submits one query and blocks until its response.
    ///
    /// Panics if the server has shut down — clients racing a graceful
    /// drain should use [`ServeClient::try_query`].
    pub fn query(&self, request: QueryRequest) -> QueryResponse {
        self.shared.query(request)
    }

    /// Like [`ServeClient::query`], but returns `None` once the server
    /// has shut down instead of panicking.
    pub fn try_query(&self, request: QueryRequest) -> Option<QueryResponse> {
        self.shared.try_submit(None, request)
    }

    /// Submits one query into a long-lived session: the retrieved
    /// documents stream into the session's accumulated KB (paying stage 1
    /// only for never-seen ones) and the answer comes from the whole KB.
    pub fn query_in_session(&self, session_id: &str, request: QueryRequest) -> QueryResponse {
        self.shared.query_in_session(session_id, request)
    }

    /// Like [`ServeClient::query_in_session`], but returns `None` once
    /// the server has shut down instead of panicking.
    pub fn try_query_in_session(
        &self,
        session_id: &str,
        request: QueryRequest,
    ) -> Option<QueryResponse> {
        self.shared
            .try_submit(Some(session_id.to_string()), request)
    }
}

impl<E: QueryEngine> QkbServer<E> {
    /// Starts the worker shards and returns the running server.
    pub fn start(engine: E, config: ServeConfig) -> Self {
        let shards = config.resolved_shards();
        let shared = Arc::new(Shared {
            cache: FragmentCache::new(config.cache_capacity, config.cache_shards),
            stage1: Stage1Cache::new(config.stage1_cache_bytes, config.stage1_cache_shards),
            component: Arc::new(ComponentCache::new(
                config.component_cache_bytes,
                config.component_cache_shards,
            )),
            sessions: SessionManager::new(SessionConfig {
                max_bytes: config.session_bytes,
                ttl: config.session_ttl,
                max_sessions: config.session_max,
                forest: ForestConfig {
                    enabled: config.session_forest,
                    max_bytes: config.session_forest_bytes,
                },
            })
            .with_recorder(config.recorder.clone()),
            engine: Arc::new(engine),
            queue: AdmissionQueue::new(),
            inflight: InFlightTable::new(),
            metrics: ServeMetrics::new(),
            config,
        });
        let workers = (0..shards)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || run_shard(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// The engine the server answers from.
    pub fn engine(&self) -> &E {
        &self.shared.engine
    }

    /// A submission handle usable from any thread.
    pub fn client(&self) -> ServeClient<E> {
        ServeClient {
            shared: self.shared.clone(),
        }
    }

    /// Submits one query and blocks until its response.
    pub fn query(&self, request: QueryRequest) -> QueryResponse {
        self.shared.query(request)
    }

    /// Submits one query into a long-lived session (see
    /// [`ServeClient::query_in_session`]).
    pub fn query_in_session(&self, session_id: &str, request: QueryRequest) -> QueryResponse {
        self.shared.query_in_session(session_id, request)
    }

    /// A stats snapshot (latency percentiles, throughput, all three
    /// cache tiers' counters, session-store counters).
    pub fn stats(&self) -> ServeStats {
        self.shared.metrics.snapshot(
            self.shared.cache.counters(),
            self.shared.stage1.counters(),
            self.shared.component.counters(),
            self.shared.sessions.stats(),
        )
    }

    /// Zeroes every monotonic counter (requests, latencies, build
    /// rounds, cache and session-store counters) and restarts the
    /// throughput clock. Benchmarks call this at phase boundaries so a
    /// phase's stats are read directly instead of hand-subtracting two
    /// snapshots; cached entries and resident sessions are untouched.
    pub fn reset_stats(&self) {
        self.shared.metrics.reset();
        self.shared.cache.reset_counters();
        self.shared.stage1.reset_counters();
        self.shared.component.reset_counters();
        self.shared.sessions.reset_counters();
    }

    /// The tracing recorder the server reports into (the one from
    /// [`ServeConfig::recorder`]); export its spans with
    /// [`qkb_obs::chrome_trace`] or `Recorder::slow_traces`.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.config.recorder
    }

    /// A point-in-time snapshot of the underlying metrics registry
    /// ([`ServeStats`] is an aggregated view over the same cells).
    pub fn registry_snapshot(&self) -> qkb_obs::RegistrySnapshot {
        self.shared.metrics.registry().snapshot()
    }

    /// Prometheus-style text exposition of the metrics registry, plus
    /// the component resolve-cache tier's store-level lines. The tier's
    /// occupancy (resident entries/bytes) is state, not a counter — it
    /// survives [`QkbServer::reset_stats`] — so it is rendered from the
    /// live store here instead of living in the resettable registry.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut text = self.registry_snapshot().to_prometheus_text();
        let c = self.shared.component.counters();
        let _ = writeln!(text, "serve_component_cache_hits_total {}", c.hits);
        let _ = writeln!(text, "serve_component_cache_misses_total {}", c.misses);
        let _ = writeln!(
            text,
            "serve_component_cache_evictions_total {}",
            c.evictions
        );
        let _ = writeln!(text, "serve_component_cache_entries {}", c.entries);
        let _ = writeln!(text, "serve_component_cache_bytes {}", c.approx_bytes);
        let _ = writeln!(
            text,
            "serve_component_cache_capacity_bytes {}",
            c.capacity_bytes
        );
        // Prefix-forest occupancy gauges are state too (frozen layers
        // and their refcounts outlive counter resets) — rendered from
        // the live session store. `serve_forest_forks_total` itself is
        // a registry counter and appears in the exposition above.
        let f = self.shared.sessions.stats().forest;
        let _ = writeln!(text, "serve_forest_freezes_total {}", f.freezes);
        let _ = writeln!(text, "serve_forest_evicted_total {}", f.evicted);
        let _ = writeln!(text, "serve_forest_frozen_layers {}", f.frozen_layers);
        let _ = writeln!(text, "serve_forest_shared_bytes {}", f.shared_bytes);
        let _ = writeln!(text, "serve_forest_layer_refs {}", f.layer_refs);
        text
    }

    /// Sweeps idle sessions past the TTL (also happens opportunistically
    /// on every session query).
    pub fn sweep_sessions(&self) {
        self.shared.sessions.sweep();
    }

    /// Ids of the sessions resident right now (the durability tier's
    /// liveness set when compacting its journal).
    pub fn session_ids(&self) -> Vec<String> {
        self.shared.sessions.ids()
    }

    /// Stable JSON rendering of one resident session's accumulated KB,
    /// `None` when the session doesn't exist. This string is the
    /// byte-identity assertion surface: the crash-replay tests compare
    /// it across an interrupted-and-recovered server and an
    /// uninterrupted one.
    pub fn session_kb_json(&self, session_id: &str) -> Option<String> {
        if !self.shared.sessions.contains(session_id) {
            return None;
        }
        let patterns = self.shared.engine.qkbfly().patterns();
        Some(self.shared.sessions.with_session(session_id, |session| {
            session.kb().to_json(patterns).to_string()
        }))
    }

    /// Replays one journaled session turn: streams `texts` into the
    /// session's KB exactly as a live [`QkbServer::query_in_session`]
    /// turn would (same deterministic `extend_kb` fold, same shared
    /// stage-1 and component caches), but without answering, without
    /// re-notifying [`ServeConfig::turn_log`] (the record being replayed
    /// already exists) and without touching the request metrics. Because
    /// extends are append-only and prefix-stable, replaying a journal's
    /// committed records in order reconstructs each session KB
    /// byte-identically to the uninterrupted run.
    pub fn replay_session_turn(
        &self,
        session_id: &str,
        texts: &[String],
    ) -> qkb_session::TurnReport {
        let qkb = self.shared.build_handle();
        self.shared.sessions.with_session(session_id, |session| {
            session.extend(&qkb, &self.shared.stage1, texts)
        })
    }

    /// Stops accepting queries, drains the queue, joins the shards.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked already abandoned its in-flight
            // claims and dropped its reply senders; swallowing the join
            // error here avoids a double panic out of Drop.
            let _ = handle.join();
        }
    }
}

impl<E: QueryEngine> Drop for QkbServer<E> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One batch group: all queued requests sharing a normalized query key.
struct Group {
    jobs: Vec<Job>,
}

/// How a group's fragment was (or will be) obtained. `Waiting` keeps the
/// retrieved doc ids so the follower can rebuild if the leader dies.
enum Resolution {
    Ready(Arc<KbFragment>, Served, u64),
    Waiting(Arc<InFlightSlot>, u64, Vec<usize>),
}

fn run_shard<E: QueryEngine>(shared: &Shared<E>) {
    let config = &shared.config;
    // The shard's own build handle: cheap clone, shared repositories and
    // counters, private parallelism knob — no `&mut` on a shared handle.
    // The process-wide component resolve cache rides inside: one instance
    // across all shards and all session turns (every handle clones from
    // the same system, so the cache's interned keys are valid everywhere).
    let qkb = shared.build_handle();
    let recorder = &config.recorder;
    loop {
        let jobs = shared
            .queue
            .pop_batch(config.batch_max, config.batch_window);
        if jobs.is_empty() {
            return; // closed and drained
        }
        // Each job's time in the admission queue, as a child of its
        // request root (the span started when the client enqueued).
        for job in &jobs {
            recorder.record_interval("admission_wait", job.trace.ctx, job.trace.start_us, |_| {});
        }

        // --- session turns leave the batch first: a session answer
        // depends on the session's accumulated KB, not just the query
        // text, so these jobs are never grouped, coalesced or served
        // from the fragment cache — they stream into their session in
        // arrival order (per-session slot locks serialize turns on one
        // session across shards) ---
        let mut session_jobs: Vec<Job> = Vec::new();
        let mut batch_jobs: Vec<Job> = Vec::new();
        for job in jobs {
            if job.session.is_some() {
                session_jobs.push(job);
            } else {
                batch_jobs.push(job);
            }
        }
        let n_session = session_jobs.len();

        // --- coalesce identical queries within the batch ---
        let mut groups: Vec<Group> = Vec::new();
        let mut by_key: FxHashMap<String, usize> = FxHashMap::default();
        for job in batch_jobs {
            match by_key.get(&job.key) {
                Some(&g) => groups[g].jobs.push(job),
                None => {
                    by_key.insert(job.key.clone(), groups.len());
                    groups.push(Group { jobs: vec![job] });
                }
            }
        }
        let n_jobs: usize = groups.iter().map(|g| g.jobs.len()).sum();
        shared.metrics.note_batch(
            (n_jobs + n_session) as u64,
            (groups.len() + n_session) as u64,
        );
        recorder.instant("batch_formed", |f| {
            f.push(("jobs", (n_jobs + n_session).into()));
            f.push(("groups", groups.len().into()));
            f.push(("session_turns", n_session.into()));
        });

        for job in session_jobs {
            run_session_turn(shared, &qkb, job);
        }
        if groups.is_empty() {
            continue;
        }

        // --- resolve each group (cache / in-flight / build), then run
        // one grouped build for every miss. The whole section is
        // unwind-guarded: if anything in it panics, every still-pending
        // in-flight claim this shard took is abandoned so follower
        // shards fall back to building instead of waiting forever. ---
        let mut claimed: Vec<u64> = Vec::new();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut resolutions: Vec<Option<Resolution>> = Vec::with_capacity(groups.len());
            let mut build_meta: Vec<(usize, u64)> = Vec::new();
            let mut doc_groups: Vec<Vec<String>> = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                // The lookup span hangs off the group's first request and
                // names the cache tier that settled the group's fate.
                let lookup_ctx = group.jobs[0].trace.ctx;
                let lookup_start = recorder.now_us();
                let note_lookup = |outcome: &'static str, tier: &'static str| {
                    recorder.record_interval("fragment_lookup", lookup_ctx, lookup_start, |f| {
                        f.push(("outcome", outcome.into()));
                        f.push(("tier", tier.into()));
                    });
                };
                let doc_ids = shared.engine.retrieve(&group.jobs[0].request);
                // Key without materializing texts: the cache-hit fast
                // path stays allocation-light.
                let fkey = shared.engine.doc_fingerprint(&doc_ids);
                // Counted fast path; with coalescing on, a miss is
                // re-checked race-free under the in-flight lock.
                if let Some(frag) = shared.cache.get(fkey) {
                    note_lookup("cache_hit", "fragment");
                    resolutions.push(Some(Resolution::Ready(frag, Served::CacheHit, fkey)));
                    continue;
                }
                if !config.coalesce {
                    note_lookup("build", "stage1");
                    build_meta.push((gi, fkey));
                    doc_groups.push(shared.engine.doc_texts(&doc_ids));
                    resolutions.push(None);
                    continue;
                }
                match shared.inflight.claim(fkey, &shared.cache) {
                    Claim::Cached(frag) => {
                        // Another shard published between our counted
                        // miss and the claim.
                        note_lookup("cache_hit", "fragment");
                        shared.cache.reclassify_miss_as_hit();
                        resolutions.push(Some(Resolution::Ready(frag, Served::CacheHit, fkey)));
                    }
                    Claim::Leader => {
                        note_lookup("lead_build", "stage1");
                        claimed.push(fkey);
                        build_meta.push((gi, fkey));
                        doc_groups.push(shared.engine.doc_texts(&doc_ids));
                        resolutions.push(None);
                    }
                    Claim::Follower(slot) => {
                        note_lookup("follow_inflight", "inflight");
                        shared.metrics.note_inflight_coalesced();
                        resolutions.push(Some(Resolution::Waiting(slot, fkey, doc_ids)));
                    }
                }
            }

            // Admission batching: one grouped build for every miss. The
            // union of the groups' documents is de-duplicated against the
            // per-document stage-1 cache inside `build_kb_grouped_with` —
            // only true misses run stage 1, and every group is assembled
            // from the shared artifacts.
            if !build_meta.is_empty() {
                // The grouped build serves every leader group in the
                // batch; its span hangs off the first one's request so
                // the build tree (stage 1, resolve, canonicalize) has a
                // request-rooted home. Ambient nesting parents the core
                // `build_kb_grouped` span (and its children) under it.
                let mut build_span =
                    recorder.span_at("grouped_build", groups[build_meta[0].0].jobs[0].trace.ctx);
                build_span.field("groups", build_meta.len());
                // Classify before building: a group whose documents are
                // already (partly) in the stage-1 cache is *assembled*
                // rather than fully cold. Probes don't touch LRU order or
                // hit counters.
                let assembled_groups = doc_groups
                    .iter()
                    .filter(|docs| docs.iter().any(|t| shared.stage1.contains_text(t)))
                    .count() as u64;
                build_span.field("assembled_groups", assembled_groups);
                let results = qkb.build_kb_grouped_with(&shared.stage1, &doc_groups);
                let mut round_timings = qkbfly::StageTimings::default();
                let mut round_resolve = qkbfly::ResolveCounters::default();
                let total_docs: usize = doc_groups.iter().map(Vec::len).sum();
                for (&(gi, fkey), result) in build_meta.iter().zip(results) {
                    round_timings.preprocess += result.timings.preprocess;
                    round_timings.graph += result.timings.graph;
                    round_timings.resolve += result.timings.resolve;
                    round_timings.canonicalize += result.timings.canonicalize;
                    for doc in &result.per_doc {
                        round_resolve.add(&doc.resolve);
                    }
                    let fragment = Arc::new(KbFragment::from_result(result));
                    if config.coalesce {
                        shared
                            .inflight
                            .publish(fkey, fragment.clone(), &shared.cache);
                    } else {
                        shared.cache.insert(fkey, fragment.clone());
                    }
                    resolutions[gi] = Some(Resolution::Ready(fragment, Served::ColdBuild, fkey));
                }
                shared.metrics.note_build_round(
                    build_meta.len() as u64,
                    assembled_groups,
                    total_docs as u64,
                    round_timings,
                    round_resolve,
                );
                build_span.field("docs", total_docs);
            }
            resolutions
        }));
        let resolutions = match unwound {
            Ok(resolutions) => resolutions,
            Err(payload) => {
                // Published keys are no-ops; pending ones wake followers.
                shared.inflight.abandon(claimed);
                std::panic::resume_unwind(payload);
            }
        };

        // --- answer and reply, one group at a time ---
        for (group, resolution) in groups.into_iter().zip(resolutions) {
            let group_ctx = group.jobs[0].trace.ctx;
            let (fragment, served, fkey) = match resolution.expect("every group resolved") {
                Resolution::Ready(f, s, k) => (f, s, k),
                Resolution::Waiting(slot, k, doc_ids) => match slot.wait() {
                    Some(f) => (f, Served::Coalesced, k),
                    None => {
                        // The leader died before publishing. Build solo
                        // (deterministic, so a duplicate is benign) and
                        // publish for any other stranded followers.
                        let _solo_span = recorder.span_at("solo_build", group_ctx);
                        let texts = shared.engine.doc_texts(&doc_ids);
                        let assembled =
                            u64::from(texts.iter().any(|t| shared.stage1.contains_text(t)));
                        let result = qkb.build_kb_with(&shared.stage1, &texts);
                        let timings = result.timings;
                        let mut resolve = qkbfly::ResolveCounters::default();
                        for doc in &result.per_doc {
                            resolve.add(&doc.resolve);
                        }
                        let fragment = Arc::new(KbFragment::from_result(result));
                        shared.metrics.note_build_round(
                            1,
                            assembled,
                            texts.len() as u64,
                            timings,
                            resolve,
                        );
                        shared.inflight.publish(k, fragment.clone(), &shared.cache);
                        (fragment, Served::ColdBuild, k)
                    }
                },
            };
            // Identical normalized queries may still differ in raw text;
            // compute answers once per distinct raw text.
            let mut memo: FxHashMap<String, Vec<String>> = FxHashMap::default();
            for job in group.jobs {
                let answer_start = recorder.now_us();
                let answers = memo
                    .entry(job.request.text.clone())
                    .or_insert_with(|| shared.engine.answer(&job.request, &fragment))
                    .clone();
                recorder.record_interval("answer", job.trace.ctx, answer_start, |_| {});
                let latency = job.enqueued.elapsed();
                shared.metrics.note_request(latency);
                recorder.close_with(job.trace, |f| {
                    f.push(("served", format!("{served:?}").into()));
                    f.push(("latency_us", (latency.as_micros() as u64).into()));
                });
                // A closed reply channel just means the client gave up.
                let _ = job.reply.send(QueryResponse {
                    answers,
                    served,
                    fragment_key: fkey,
                    n_docs: fragment.n_docs,
                    n_facts: fragment.kb.n_facts(),
                    latency,
                });
            }
        }
    }
}

/// One session turn: retrieve, stream the retrieved documents into the
/// session's KB (stage-1 artifacts compute-or-lookup through the shared
/// per-document cache — a document any earlier query paid for is free
/// here too), answer from the whole accumulated KB, reply.
fn run_session_turn<E: QueryEngine>(shared: &Shared<E>, qkb: &qkbfly::Qkbfly, job: Job) {
    let recorder = qkb.recorder();
    let session_id = job.session.as_deref().expect("session job");
    let mut turn_span = recorder.span_at("session_turn", job.trace.ctx);
    if recorder.is_enabled() {
        turn_span.field("session", session_id.to_string());
    }
    let doc_ids = shared.engine.retrieve(&job.request);
    let fkey = shared.engine.doc_fingerprint(&doc_ids);
    let texts = shared.engine.doc_texts(&doc_ids);
    let (report, answers, n_docs, n_facts) = shared.sessions.with_session(session_id, |session| {
        let report = session.extend(qkb, &shared.stage1, &texts);
        // The durability hook fires inside the slot lock: concurrent
        // turns on one session serialize here, so the journal's append
        // order is exactly the order documents merged into the KB.
        if let Some(log) = &shared.config.turn_log {
            log.log_turn(&LoggedTurn {
                session_id,
                turn: session.turns(),
                cold: report.cold,
                doc_ids: &doc_ids,
                // Equals fingerprint_seq(texts) by the engine contract.
                docs_fingerprint: fkey,
            });
        }
        let answers = shared.engine.answer_kb(&job.request, session.kb());
        (
            report,
            answers,
            session.kb().n_docs(),
            session.kb().n_facts(),
        )
    });
    shared.sessions.note_turn(&report);
    let served = if report.forked {
        shared.metrics.note_forest_fork();
        Served::SessionForked
    } else if report.cold {
        Served::SessionCold
    } else {
        Served::SessionExtended
    };
    drop(turn_span);
    let latency = job.enqueued.elapsed();
    shared.metrics.note_request(latency);
    recorder.close_with(job.trace, |f| {
        f.push(("served", format!("{served:?}").into()));
        f.push(("latency_us", (latency.as_micros() as u64).into()));
    });
    let _ = job.reply.send(QueryResponse {
        answers,
        served,
        fragment_key: fkey,
        n_docs,
        n_facts,
        latency,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(key: &str) -> Job {
        let (tx, _rx) = mpsc::channel();
        Job {
            request: QueryRequest::question(key),
            key: key.to_string(),
            session: None,
            enqueued: Instant::now(),
            trace: OpenSpan::none(),
            reply: tx,
        }
    }

    #[test]
    fn queue_batches_up_to_max() {
        let q = AdmissionQueue::new();
        for i in 0..5 {
            q.push(job(&format!("k{i}"))).expect("open");
        }
        let batch = q.pop_batch(3, Duration::from_millis(5));
        assert_eq!(batch.len(), 3);
        let batch = q.pop_batch(3, Duration::from_millis(5));
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn queue_close_drains_then_ends() {
        let q = AdmissionQueue::new();
        q.push(job("a")).expect("open");
        q.close();
        assert!(q.push(job("b")).is_err());
        assert_eq!(q.pop_batch(4, Duration::ZERO).len(), 1);
        assert!(q.pop_batch(4, Duration::ZERO).is_empty());
    }

    #[test]
    fn queue_window_collects_late_arrivals() {
        let q = Arc::new(AdmissionQueue::new());
        q.push(job("first")).expect("open");
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(job("late")).expect("open");
        });
        let batch = q.pop_batch(8, Duration::from_millis(300));
        pusher.join().expect("pusher");
        assert_eq!(batch.len(), 2, "late arrival inside the window joins");
    }

    #[test]
    fn inflight_claim_leader_then_follower() {
        let table = InFlightTable::new();
        let cache = FragmentCache::new(4, 1);
        assert!(matches!(table.claim(9, &cache), Claim::Leader));
        let follower = table.claim(9, &cache);
        assert!(matches!(follower, Claim::Follower(_)));
        let frag = Arc::new(KbFragment {
            kb: qkb_kb::OnTheFlyKb::new(),
            timings: qkbfly::StageTimings::default(),
            n_docs: 0,
        });
        table.publish(9, frag, &cache);
        // Follower observes the published fragment without blocking.
        if let Claim::Follower(slot) = follower {
            assert_eq!(slot.wait().expect("published").n_docs, 0);
        }
        // After publication the key is cached, not claimable.
        assert!(matches!(table.claim(9, &cache), Claim::Cached(_)));
    }

    #[test]
    fn abandoned_claims_wake_followers_with_none() {
        let table = InFlightTable::new();
        let cache = FragmentCache::new(4, 1);
        assert!(matches!(table.claim(3, &cache), Claim::Leader));
        let follower = table.claim(3, &cache);
        table.abandon([3]);
        if let Claim::Follower(slot) = follower {
            assert!(slot.wait().is_none(), "follower must see the abandonment");
        } else {
            panic!("expected follower");
        }
        // The key is claimable again after abandonment.
        assert!(matches!(table.claim(3, &cache), Claim::Leader));
        // Abandoning an unclaimed/published key is a no-op.
        table.abandon([99]);
    }
}
