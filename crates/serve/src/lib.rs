//! # qkb-serve
//!
//! A sharded query-serving front-end for on-the-fly knowledge-base
//! construction. The paper's premise makes the *serving* path the
//! production hot loop — KB fragments are built at query time — so this
//! crate turns the batch machinery of `qkbfly` + `qkb_qa` into a
//! long-running server:
//!
//! * [`QkbServer`] — N worker shards over an admission queue, each shard
//!   holding a cheaply cloned `Qkbfly` handle;
//! * **request coalescing** — concurrent identical normalized queries
//!   share one in-flight build (in-batch grouping plus a global in-flight
//!   table across shards);
//! * **three-tier cache** — a sharded bounded LRU fragment cache keyed
//!   by the fingerprint of the query's retrieved-document set (exact-set
//!   reuse), fronted by a byte-bounded per-document stage-1 cache
//!   ([`Stage1Cache`]): queries whose retrieved sets merely *overlap*
//!   assemble their fragment from memoized per-document artifacts via
//!   `Qkbfly::build_kb_grouped_with`, re-running stage 1 only for
//!   never-seen documents; below both, a process-wide **component
//!   resolve cache** ([`ComponentCache`]) memoizes solved coupling
//!   components of the joint NED+CR problem, so even a *never-seen*
//!   document skips the solver for components it shares with anything
//!   resolved before (hit/miss/evict counters on all tiers);
//! * **admission batching** — a time/count window groups queued distinct
//!   queries into one `build_kb_grouped` call, exploiting the parallel
//!   per-document fan-out;
//! * **session-scoped streaming KBs** — [`QkbServer::query_in_session`]
//!   gives each client session a long-lived, monotonically growing KB
//!   (the paper's interactive-exploration scenario, §6): successive
//!   queries' retrieved documents stream in through
//!   `qkbfly::Qkbfly::extend_kb` (ids stable, already-resident documents
//!   deduplicated, stage-1 artifacts shared with the per-document cache)
//!   and answers come from the accumulated KB; sessions live in a
//!   byte-budgeted, TTL-swept `qkb_session::SessionManager` shared by
//!   all shards;
//! * [`ServeStats`] — p50/p95 latency, throughput, cache hit rate,
//!   per-stage build time and session-store snapshots, with
//!   [`QkbServer::reset_stats`] as the benchmark phase boundary; the
//!   same cells live in a `qkb_obs` metrics registry
//!   ([`QkbServer::metrics_text`] renders the Prometheus-style text);
//! * **tracing** — pass a live [`qkb_obs::Recorder`] in
//!   [`ServeConfig::recorder`] and every request records a span tree
//!   (admission wait, fragment-cache outcome, grouped build with the
//!   core's per-stage and per-component spans nested inside, answer)
//!   exportable as Chrome-trace JSON via [`qkb_obs::chrome_trace`].
//!
//! Everything is built on `std::sync` channels, mutexes and threads —
//! the offline vendor tree has no async runtime — mirroring the style of
//! `qkb_util::par_map_ordered`.
//!
//! Determinism contract: fragments come from the deterministic grouped
//! build and answers are a pure function of `(request, fragment)`, so a
//! cache-hit or coalesced answer is **byte-identical** to a cold build's
//! at any shard count (`tests/serving.rs` enforces this).

pub mod cache;
pub mod component_cache;
pub mod engine;
pub mod request;
pub mod server;
mod sharded;
pub mod stage1_cache;
pub mod stats;

pub use cache::{CacheCounters, FragmentCache};
pub use component_cache::{ComponentCache, ComponentCacheCounters};
pub use engine::{KbFragment, QueryEngine};
pub use qkb_session::SessionStats;
pub use request::{QueryKind, QueryRequest, QueryResponse, Served};
pub use server::{LoggedTurn, QkbServer, ServeClient, ServeConfig, TurnLog};
pub use stage1_cache::{Stage1Cache, Stage1Counters};
pub use stats::ServeStats;
