//! # qkb-serve
//!
//! A sharded query-serving front-end for on-the-fly knowledge-base
//! construction. The paper's premise makes the *serving* path the
//! production hot loop — KB fragments are built at query time — so this
//! crate turns the batch machinery of `qkbfly` + `qkb_qa` into a
//! long-running server:
//!
//! * [`QkbServer`] — N worker shards over an admission queue, each shard
//!   holding a cheaply cloned `Qkbfly` handle;
//! * **request coalescing** — concurrent identical normalized queries
//!   share one in-flight build (in-batch grouping plus a global in-flight
//!   table across shards);
//! * **fragment cache** — a sharded bounded LRU keyed by the fingerprint
//!   of the query's retrieved-document set, so overlapping queries reuse
//!   constructed fragments (hit/miss/evict counters included);
//! * **admission batching** — a time/count window groups queued distinct
//!   queries into one `build_kb_grouped` call, exploiting the parallel
//!   per-document fan-out;
//! * [`ServeStats`] — p50/p95 latency, throughput, cache hit rate and
//!   per-stage build time snapshots.
//!
//! Everything is built on `std::sync` channels, mutexes and threads —
//! the offline vendor tree has no async runtime — mirroring the style of
//! `qkb_util::par_map_ordered`.
//!
//! Determinism contract: fragments come from the deterministic grouped
//! build and answers are a pure function of `(request, fragment)`, so a
//! cache-hit or coalesced answer is **byte-identical** to a cold build's
//! at any shard count (`tests/serving.rs` enforces this).

pub mod cache;
pub mod engine;
pub mod request;
pub mod server;
pub mod stats;

pub use cache::{CacheCounters, FragmentCache};
pub use engine::{KbFragment, QueryEngine};
pub use request::{QueryKind, QueryRequest, QueryResponse, Served};
pub use server::{QkbServer, ServeClient, ServeConfig};
pub use stats::ServeStats;
