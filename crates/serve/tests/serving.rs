//! Serving-semantics contracts:
//!
//! 1. **determinism** — answers served from the fragment cache (or a
//!    coalesced build) are byte-identical to cold-build answers, at any
//!    shard count;
//! 2. **coalescing** — K concurrent identical queries trigger exactly one
//!    `build_kb` (counted through the shared `BuildCounters` hook);
//! 3. **admission batching** — distinct queued queries share one grouped
//!    build round;
//! 4. **cache bounds** — a capacity-1 cache evicts under alternation and
//!    hits under repetition.

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig, Served};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A small but real engine: generated world, BM25 corpus, QKBfly system.
fn engine() -> QaSystem {
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 12, 3).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 8, 4).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 10, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let mut sys = QaSystem::new(world, docs, qkb);
    sys.top_k = 4;
    sys
}

fn questions(sys: &QaSystem, n: usize) -> Vec<String> {
    trends_test(sys.world(), n, 13)
        .into_iter()
        .map(|q| q.text)
        .collect()
}

/// The offline reference path: retrieve → build_kb → answer_in_kb.
fn cold_answers(sys: &QaSystem, question: &str) -> Vec<String> {
    let doc_ids = sys.retrieve_docs(question);
    let texts = sys.doc_texts(&doc_ids);
    let kb = sys.qkbfly().build_kb(&texts).kb;
    sys.answer_in_kb(question, &kb)
}

#[test]
fn cache_hit_answers_are_byte_identical_to_cold_builds() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 4);
    let expected: Vec<Vec<String>> = qs.iter().map(|q| cold_answers(&sys, q)).collect();

    for shards in [1usize, 3] {
        let server = QkbServer::start(
            sys.clone(),
            ServeConfig {
                shards,
                cache_capacity: 16,
                batch_max: 1,
                batch_window: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        for (q, want) in qs.iter().zip(&expected) {
            let cold = server.query(QueryRequest::question(q));
            let warm = server.query(QueryRequest::question(q));
            assert_eq!(
                &cold.answers, want,
                "served cold answers must match the offline path ({shards} shards)"
            );
            assert_eq!(
                &warm.answers, want,
                "cache-hit answers must be byte-identical ({shards} shards)"
            );
            assert_eq!(warm.served, Served::CacheHit);
            assert_eq!(warm.fragment_key, cold.fragment_key);
        }
        let stats = server.stats();
        assert!(stats.cache.hits >= qs.len() as u64);
        server.shutdown();
    }
}

#[test]
fn k_concurrent_identical_queries_build_exactly_once() {
    let sys = Arc::new(engine());
    let question = questions(&sys, 1).remove(0);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1, // serial batches: the count below is exact
            cache_capacity: 16,
            batch_max: 16,
            batch_window: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    );
    let builds_before = sys.qkbfly().counters().builds();

    const K: usize = 8;
    let barrier = Barrier::new(K);
    let reference = cold_answers(&sys, &question);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..K {
            let client = server.client();
            let question = question.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                client.query(QueryRequest::question(&question))
            }));
        }
        for h in handles {
            let response = h.join().expect("client");
            assert_eq!(response.answers, reference);
        }
    });

    let builds_after = sys.qkbfly().counters().builds();
    // One for the reference cold build above, one for all K served queries.
    assert_eq!(
        builds_after - builds_before,
        2,
        "K concurrent identical queries must share one build"
    );
    let stats = server.stats();
    assert!(
        stats.batch_coalesced + stats.cache.hits + stats.inflight_coalesced >= (K - 1) as u64,
        "stats must account for the shared requests: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn admission_batching_groups_distinct_queries_into_one_round() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 4);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            batch_max: 8,
            batch_window: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    let barrier = Barrier::new(qs.len());
    std::thread::scope(|scope| {
        for q in &qs {
            let client = server.client();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                client.query(QueryRequest::question(q))
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.requests, qs.len() as u64);
    assert!(
        stats.build_rounds <= 2,
        "4 concurrent distinct queries should share 1–2 grouped build rounds, got {}",
        stats.build_rounds
    );
    assert!(stats.cold_builds >= 1);
    server.shutdown();
}

#[test]
fn capacity_one_cache_evicts_under_alternation_and_hits_under_repeats() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 2);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 1,
            cache_shards: 1,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    // Repetition: second ask hits.
    let a1 = server.query(QueryRequest::question(&qs[0]));
    let a2 = server.query(QueryRequest::question(&qs[0]));
    assert_eq!(a2.served, Served::CacheHit);
    assert_eq!(a1.answers, a2.answers);
    // Alternation with one slot: every switch evicts, never hits —
    // unless both questions happen to retrieve identical documents.
    let b = server.query(QueryRequest::question(&qs[1]));
    let a3 = server.query(QueryRequest::question(&qs[0]));
    let stats = server.stats();
    if b.fragment_key != a1.fragment_key {
        assert_eq!(b.served, Served::ColdBuild);
        assert_eq!(a3.served, Served::ColdBuild);
        assert!(stats.cache.evictions >= 2, "stats: {stats:?}");
    }
    assert_eq!(a3.answers, a1.answers);
    server.shutdown();
}

/// Incremental fragment construction: two queries whose retrieved sets
/// overlap must run stage 1 exactly once per *union* document — the
/// second query's fragment is assembled from the first's cached
/// per-document artifacts plus stage-1 runs for the difference only.
#[test]
fn overlapping_queries_compute_stage1_once_per_union_document() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 10);
    let sets: Vec<Vec<usize>> = qs.iter().map(|q| sys.retrieve_docs(q)).collect();
    // Pick a pair with overlapping but distinct retrieved sets (top-4
    // BM25 over a 20-doc corpus makes one near-certain).
    let (i, j) = (0..qs.len())
        .flat_map(|a| (0..qs.len()).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b && sets[a] != sets[b])
        .find(|&(a, b)| sets[a].iter().any(|d| sets[b].contains(d)))
        .expect("no overlapping retrieved-set pair in the fixture");
    let expected_i = cold_answers(&sys, &qs[i]);
    let expected_j = cold_answers(&sys, &qs[j]);
    // Stage-1 identity is the document text; union size counts distinct texts.
    let union: std::collections::HashSet<String> = sets[i]
        .iter()
        .chain(&sets[j])
        .flat_map(|&d| sys.doc_texts(&[d]))
        .collect();
    let overlap = sets[i].len() + sets[j].len() - union.len();
    assert!(overlap > 0);

    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            stage1_cache_bytes: 256 << 20,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let before = sys.qkbfly().counters().stage1_computed();
    let r1 = server.query(QueryRequest::question(&qs[i]));
    let r2 = server.query(QueryRequest::question(&qs[j]));
    assert_eq!(
        sys.qkbfly().counters().stage1_computed() - before,
        union.len() as u64,
        "stage 1 must run once per union document, not per query"
    );
    // Assembled answers are byte-identical to the offline cold path.
    assert_eq!(r1.answers, expected_i);
    assert_eq!(r2.answers, expected_j);
    assert_ne!(r1.fragment_key, r2.fragment_key);
    let stats = server.stats();
    assert_eq!(
        stats.stage1.hits, overlap as u64,
        "every shared document is a stage-1 hit: {stats:?}"
    );
    assert_eq!(stats.stage1.misses, union.len() as u64);
    assert_eq!(stats.cold_builds, 1, "the first query is fully cold");
    assert_eq!(
        stats.assembled_builds, 1,
        "the second query must be assembled from cached artifacts"
    );
    server.shutdown();
}

/// Disabling tier one (stage-1 bytes = 0) reproduces the fragment-only
/// PR 2 behavior: overlapping queries re-pay stage 1 per document.
#[test]
fn disabled_stage1_cache_recomputes_overlap() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 4);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            stage1_cache_bytes: 0,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    // Keep only queries with pairwise-distinct retrieved sets, so none
    // of them can short-circuit through the fragment cache.
    let mut seen_sets: Vec<Vec<usize>> = Vec::new();
    let distinct: Vec<&String> = qs
        .iter()
        .filter(|q| {
            let set = sys.retrieve_docs(q);
            if seen_sets.contains(&set) {
                false
            } else {
                seen_sets.push(set);
                true
            }
        })
        .collect();
    let total_docs: usize = seen_sets.iter().map(Vec::len).sum();
    let before = sys.qkbfly().counters().stage1_computed();
    for q in &distinct {
        let _ = server.query(QueryRequest::question(*q));
    }
    assert_eq!(
        sys.qkbfly().counters().stage1_computed() - before,
        total_docs as u64,
        "tier one off: every query pays stage 1 for its whole set"
    );
    let stats = server.stats();
    assert_eq!(stats.assembled_builds, 0);
    assert_eq!(stats.stage1.hits + stats.stage1.misses, 0);
    server.shutdown();
}

/// Session-scoped streaming: successive queries in one session stream
/// their retrieved documents into one growing KB, and every turn's
/// answer is byte-identical to answering over a cold `build_kb` of the
/// union of all documents retrieved so far (first-arrival order). Stage 1
/// runs once per distinct document — across turns *and* across sessions,
/// through the shared per-document cache.
#[test]
fn session_turns_answer_from_the_accumulated_union_kb() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 4);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 2,
            stage1_cache_bytes: 256 << 20,
            ..ServeConfig::default()
        },
    );
    let mut union: Vec<String> = Vec::new();
    let mut retrieved_total = 0usize;
    for (turn, q) in qs.iter().enumerate() {
        let response = server.query_in_session("alice", QueryRequest::question(q));
        // Offline mirror of the session's accumulated document set.
        let texts = sys.doc_texts(&sys.retrieve_docs(q));
        retrieved_total += texts.len();
        for text in texts {
            if !union.contains(&text) {
                union.push(text);
            }
        }
        let expected = sys.answer_in_kb(q, &sys.qkbfly().build_kb(&union).kb);
        assert_eq!(
            response.answers, expected,
            "turn {turn}: session answer must equal the cold union build's"
        );
        assert_eq!(response.n_docs, union.len(), "turn {turn}");
        assert_eq!(
            response.served,
            if turn == 0 {
                Served::SessionCold
            } else {
                Served::SessionExtended
            },
            "turn {turn}"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.sessions.docs_merged as usize, union.len());
    assert_eq!(
        stats.sessions.docs_deduped as usize,
        retrieved_total - union.len(),
        "every re-retrieved document is streaming-deduped: {stats:?}"
    );
    assert_eq!(stats.sessions.turns_cold, 1);
    assert_eq!(stats.sessions.turns_extended, (qs.len() - 1) as u64);
    assert_eq!(stats.sessions.live, 1);
    assert_eq!(
        stats.stage1.misses as usize,
        union.len(),
        "stage 1 is provided once per distinct session document"
    );

    // A second session opening on the same documents doesn't even need
    // the stage-1 cache: it forks Alice's frozen opening prefix from the
    // prefix forest — zero lookups, zero rebuild — and still answers
    // byte-identically to a cold build.
    let lookups_before = {
        let s = server.stats().stage1;
        s.hits + s.misses
    };
    let response = server.query_in_session("bob", QueryRequest::question(&qs[0]));
    assert_eq!(response.served, Served::SessionForked);
    assert_eq!(response.answers, cold_answers(&sys, &qs[0]));
    let stats = server.stats();
    assert_eq!(stats.sessions.live, 2);
    assert_eq!(stats.sessions.turns_forked, 1);
    assert!(stats.sessions.forest.shared_bytes > 0);
    assert_eq!(
        stats.stage1.hits + stats.stage1.misses,
        lookups_before,
        "a forked opening reuses the shared prefix without stage-1 traffic"
    );
    server.shutdown();
}

/// Cross-session component reuse through the process-wide resolve tier:
/// with the stage-1 cache off (so a second session really re-runs the
/// resolve stage), a second session over the same documents replays
/// every coupling component from the shared component cache — zero new
/// solver runs — and still answers byte-identically.
#[test]
fn cross_session_component_reuse_hits_the_shared_resolve_tier() {
    let sys = Arc::new(engine());
    let q = questions(&sys, 1).remove(0);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 2,
            stage1_cache_bytes: 0, // force the resolve stage to re-run
            // Forest off: a fork would skip the rebuild entirely; this
            // test pins the resolve tier below it.
            session_forest: false,
            ..ServeConfig::default()
        },
    );
    let alice = server.query_in_session("alice", QueryRequest::question(&q));
    assert_eq!(alice.served, Served::SessionCold);
    let cold = server.stats().component;
    assert!(cold.misses > 0, "cold session must solve: {cold:?}");

    let bob = server.query_in_session("bob", QueryRequest::question(&q));
    assert_eq!(bob.served, Served::SessionCold);
    assert_eq!(bob.answers, alice.answers, "replayed components, same KB");
    let warm = server.stats().component;
    assert_eq!(
        warm.misses, cold.misses,
        "the second session must not re-solve any component"
    );
    // Bob resolves the same documents, so his build looks up exactly as
    // many components as Alice's did (her hits + misses) — all hits now.
    assert_eq!(
        warm.hits,
        cold.hits + cold.hits + cold.misses,
        "every component of the second session replays from the tier"
    );
    server.shutdown();
}

/// The serving layer's session TTL: an idle session expires and its id
/// starts cold on the next query, with the eviction counted.
#[test]
fn idle_sessions_expire_through_the_serve_config_ttl() {
    let sys = Arc::new(engine());
    let q = questions(&sys, 1).remove(0);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            session_ttl: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    );
    let first = server.query_in_session("s", QueryRequest::question(&q));
    assert_eq!(first.served, Served::SessionCold);
    let warm = server.query_in_session("s", QueryRequest::question(&q));
    assert_eq!(
        warm.served,
        Served::SessionExtended,
        "inside the TTL the session persists (even with nothing new to merge)"
    );
    std::thread::sleep(Duration::from_millis(80));
    server.sweep_sessions();
    assert_eq!(server.stats().sessions.evicted_ttl, 1);
    // The id starts over (its private delta is gone) — but its opening
    // prefix is still frozen in the forest, so the restart forks it
    // instead of rebuilding.
    let cold_again = server.query_in_session("s", QueryRequest::question(&q));
    assert_eq!(cold_again.served, Served::SessionForked);
    assert_eq!(cold_again.answers, first.answers);
    server.shutdown();
}

/// `reset_stats` is a phase boundary: counters drop to zero, resident
/// state (cached fragments, live sessions) survives.
#[test]
fn reset_stats_zeroes_counters_but_keeps_resident_state() {
    let sys = Arc::new(engine());
    let qs = questions(&sys, 2);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let _ = server.query(QueryRequest::question(&qs[0]));
    let _ = server.query_in_session("s", QueryRequest::question(&qs[1]));
    let before = server.stats();
    assert!(before.requests == 2 && before.sessions.turns() == 1);
    server.reset_stats();
    let after = server.stats();
    assert_eq!(after.requests, 0);
    assert_eq!(after.cache.hits + after.cache.misses, 0);
    assert_eq!(after.stage1.hits + after.stage1.misses, 0);
    assert_eq!(after.sessions.turns(), 0);
    assert_eq!(after.latency_p95_ms, 0.0);
    // Resident state survives the reset: the repeat is still a cache
    // hit and the session still extends.
    assert_eq!(after.cache.entries, before.cache.entries);
    assert_eq!(after.sessions.live, 1);
    let warm = server.query(QueryRequest::question(&qs[0]));
    assert_eq!(warm.served, Served::CacheHit);
    let turn = server.query_in_session("s", QueryRequest::question(&qs[1]));
    assert_eq!(turn.served, Served::SessionExtended);
    let stats = server.stats();
    assert_eq!((stats.requests, stats.cache.hits), (2, 1));
    server.shutdown();
}

#[test]
fn entity_seed_requests_serve_rendered_facts() {
    let sys = Arc::new(engine());
    // Seed with the subject of a gold fact so retrieval has something.
    let seed = sys
        .world()
        .entity(sys.world().facts[0].subject)
        .canonical
        .clone();
    let server = QkbServer::start(sys.clone(), ServeConfig::default());
    let response = server.query(QueryRequest::entity(&seed));
    for fact in &response.answers {
        // Facts are rendered in the paper's ⟨subject, relation, …⟩
        // notation and each must actually mention the seed entity.
        assert!(
            fact.starts_with('⟨') && fact.ends_with('⟩'),
            "fact notation expected, got {fact:?}"
        );
        assert!(fact.contains(&seed), "fact must touch {seed:?}: {fact:?}");
    }
    // The same seed asked twice reuses the fragment.
    let again = server.query(QueryRequest::entity(&seed));
    assert_eq!(response.answers, again.answers);
    assert_eq!(again.served, Served::CacheHit);
    server.shutdown();
}
