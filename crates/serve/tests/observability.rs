//! Observability contracts of the serving path:
//!
//! 1. **trace export** — a served request with tracing enabled produces
//!    Chrome-trace JSON whose span tree (reconstructed from the parsed
//!    export alone) contains the admission wait, the per-stage build
//!    spans, per-component resolve spans, and the cache-outcome lookup
//!    span, all correctly nested under the request root;
//! 2. **reset audit** — `QkbServer::reset_stats` zeroes the metrics
//!    registry, both cache tiers and the session store in one call
//!    (all-zero snapshots afterwards), without touching resident state.

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_obs::Recorder;
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig, Served};
use qkb_util::json::Value;
use std::sync::Arc;
use std::time::Duration;

/// A small but real engine: generated world, BM25 corpus, QKBfly system.
fn engine() -> QaSystem {
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 12, 3).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 8, 4).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 10, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let mut sys = QaSystem::new(world, docs, qkb);
    sys.top_k = 4;
    sys
}

fn question(sys: &QaSystem) -> String {
    trends_test(sys.world(), 1, 13).remove(0).text
}

/// One span event decoded back out of the exported JSON.
#[derive(Debug)]
struct Event {
    name: String,
    id: u64,
    parent: u64,
    trace: u64,
    start: u64,
    end: u64,
    instant: bool,
    args: Value,
}

fn decode_events(doc: &Value) -> Vec<Event> {
    doc.get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents array")
        .iter()
        .map(|e| {
            let num = |v: &Value, k: &str| {
                v.get(k)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("numeric {k} in {e:?}")) as u64
            };
            let args = e.get("args").expect("args").clone();
            let instant = e.get("ph").and_then(Value::as_str) == Some("i");
            let start = num(e, "ts");
            let dur = if instant { 0 } else { num(e, "dur") };
            Event {
                name: e
                    .get("name")
                    .and_then(Value::as_str)
                    .expect("name")
                    .to_string(),
                id: num(&args, "id"),
                parent: num(&args, "parent"),
                trace: num(&args, "trace"),
                start,
                end: start + dur,
                instant,
                args,
            }
        })
        .collect()
}

/// Ids of every span in `events` reachable from (and including) `root`.
fn descendants(events: &[Event], root: u64) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        for (i, e) in events.iter().enumerate() {
            if (e.id == id || e.parent == id) && !out.contains(&i) {
                out.push(i);
                if e.id != id {
                    frontier.push(e.id);
                }
            }
        }
    }
    out
}

#[test]
fn traced_request_exports_a_well_formed_span_tree() {
    let sys = Arc::new(engine());
    let q = question(&sys);
    let recorder = Recorder::flight();
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            batch_max: 1,
            batch_window: Duration::ZERO,
            recorder: recorder.clone(),
            ..ServeConfig::default()
        },
    );
    let cold = server.query(QueryRequest::question(&q));
    assert_eq!(cold.served, Served::ColdBuild);
    let warm = server.query(QueryRequest::question(&q));
    assert_eq!(warm.served, Served::CacheHit);
    server.shutdown();

    // Everything below is asserted against the re-parsed JSON export,
    // not the in-memory records.
    let exported = recorder.chrome_trace().to_string();
    let parsed = Value::parse(&exported).expect("chrome trace parses back");
    let events = decode_events(&parsed);
    assert!(!events.is_empty());

    // Nesting is correct across the whole export: every non-root event's
    // parent exists, shares its trace id, and contains its interval.
    for e in &events {
        if e.parent == 0 {
            continue;
        }
        let parent = events
            .iter()
            .find(|p| p.id == e.parent)
            .unwrap_or_else(|| panic!("orphan parent for {e:?}"));
        assert_eq!(e.trace, parent.trace, "trace bleed: {e:?} under {parent:?}");
        assert!(e.start >= parent.start, "{e:?} starts before {parent:?}");
        if !e.instant {
            assert!(e.end <= parent.end, "{e:?} outlives {parent:?}");
        }
    }

    // Two request roots: the cold build and the cache hit.
    let roots: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "request" && e.parent == 0)
        .collect();
    assert_eq!(roots.len(), 2, "one root per served request");
    let served_of = |root: &Event| {
        root.args
            .get("served")
            .and_then(Value::as_str)
            .expect("served field on the request root")
            .to_string()
    };
    let cold_root = roots
        .iter()
        .find(|r| served_of(r) == "ColdBuild")
        .expect("cold request root");
    let warm_root = roots
        .iter()
        .find(|r| served_of(r) == "CacheHit")
        .expect("warm request root");

    // The cold request's tree walks the whole pipeline: admission wait,
    // cache-outcome lookup, grouped build with the core build inside it
    // (per-doc stage 1 with its per-stage children, per-component
    // resolve), and the answer phase.
    let tree = descendants(&events, cold_root.id);
    let names: Vec<&str> = tree.iter().map(|&i| events[i].name.as_str()).collect();
    for expected in [
        "admission_wait",
        "fragment_lookup",
        "grouped_build",
        "build_kb_grouped",
        "stage1_doc",
        "stage1",
        "preprocess",
        "graph",
        "resolve",
        "resolve_component",
        "answer",
    ] {
        assert!(
            names.contains(&expected),
            "cold request tree must contain {expected:?}, got {names:?}"
        );
    }
    assert!(
        names
            .iter()
            .any(|n| matches!(*n, "canonicalize" | "canon_decide" | "canon_apply")),
        "cold request tree must contain a canonicalize-stage span: {names:?}"
    );
    let lookup = tree
        .iter()
        .map(|&i| &events[i])
        .find(|e| e.name == "fragment_lookup")
        .expect("lookup span");
    assert_eq!(
        lookup.args.get("outcome").and_then(Value::as_str),
        Some("lead_build"),
        "the cold query leads its own build"
    );
    let stage1_doc = tree
        .iter()
        .map(|&i| &events[i])
        .find(|e| e.name == "stage1_doc")
        .expect("per-doc stage-1 span");
    assert_eq!(
        stage1_doc.args.get("cache").and_then(Value::as_str),
        Some("miss"),
        "first sight of every document is a stage-1 miss"
    );
    // Every per-component resolve span under the request root reports
    // its component-cache outcome; with the tier enabled (the default)
    // that is hit or miss, never bypass, and a cold server must miss at
    // least once.
    let resolve_components: Vec<&Event> = tree
        .iter()
        .map(|&i| &events[i])
        .filter(|e| e.name == "resolve_component")
        .collect();
    assert!(!resolve_components.is_empty());
    for rc in &resolve_components {
        let cache = rc.args.get("cache").and_then(Value::as_str);
        assert!(
            matches!(cache, Some("hit") | Some("miss")),
            "resolve_component must report a cache outcome, got {:?}",
            rc.args
        );
    }
    assert!(
        resolve_components
            .iter()
            .any(|rc| rc.args.get("cache").and_then(Value::as_str) == Some("miss")),
        "a cold build must miss the component cache at least once"
    );

    // The warm request never builds: its lookup reports the fragment
    // cache hit and no build spans hang under it.
    let tree = descendants(&events, warm_root.id);
    let warm_events: Vec<&Event> = tree.iter().map(|&i| &events[i]).collect();
    let lookup = warm_events
        .iter()
        .find(|e| e.name == "fragment_lookup")
        .expect("warm lookup span");
    assert_eq!(
        lookup.args.get("outcome").and_then(Value::as_str),
        Some("cache_hit")
    );
    assert_eq!(
        lookup.args.get("tier").and_then(Value::as_str),
        Some("fragment")
    );
    assert!(
        warm_events.iter().all(|e| e.name != "grouped_build"),
        "a cache hit must not build"
    );
    assert!(warm_events.iter().any(|e| e.name == "answer"));
}

/// Session turns trace too: the turn span nests the session-extend and
/// core streaming spans under the request root.
#[test]
fn traced_session_turn_nests_the_streaming_build() {
    let sys = Arc::new(engine());
    let q = question(&sys);
    let recorder = Recorder::flight();
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            recorder: recorder.clone(),
            ..ServeConfig::default()
        },
    );
    let turn = server.query_in_session("alice", QueryRequest::question(&q));
    assert_eq!(turn.served, Served::SessionCold);
    server.shutdown();

    let parsed = Value::parse(&recorder.chrome_trace().to_string()).expect("parses");
    let events = decode_events(&parsed);
    let root = events
        .iter()
        .find(|e| e.name == "request" && e.parent == 0)
        .expect("request root");
    let tree = descendants(&events, root.id);
    let names: Vec<&str> = tree.iter().map(|&i| events[i].name.as_str()).collect();
    for expected in [
        "admission_wait",
        "session_turn",
        "session_extend",
        "stream_into_kb",
    ] {
        assert!(
            names.contains(&expected),
            "session tree must contain {expected:?}, got {names:?}"
        );
    }
    let turn_span = tree
        .iter()
        .map(|&i| &events[i])
        .find(|e| e.name == "session_turn")
        .expect("turn span");
    assert_eq!(
        turn_span.args.get("session").and_then(Value::as_str),
        Some("alice")
    );
}

/// The prefix forest traces and meters: a cold opening emits a
/// `prefix_freeze` span, a second session with the same opening emits a
/// `session_fork` span carrying the **same** layer fingerprint, and the
/// forest gauges show up in the Prometheus text exposition.
#[test]
fn forked_sessions_trace_the_freeze_and_fork_with_matching_fingerprints() {
    let sys = Arc::new(engine());
    let q = question(&sys);
    let recorder = Recorder::flight();
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            recorder: recorder.clone(),
            ..ServeConfig::default()
        },
    );
    let alice = server.query_in_session("alice", QueryRequest::question(&q));
    assert_eq!(alice.served, Served::SessionCold);
    let bob = server.query_in_session("bob", QueryRequest::question(&q));
    assert_eq!(bob.served, Served::SessionForked);

    // Metrics: the fork counter lives in the registry, the occupancy
    // gauges come from the live forest.
    let snap = server.registry_snapshot();
    assert_eq!(snap.counter("serve_forest_forks_total"), Some(1));
    let text = server.metrics_text();
    assert!(text.contains("serve_forest_forks_total 1"));
    assert!(text.contains("serve_forest_freezes_total 1"));
    assert!(text.contains("serve_forest_frozen_layers 1"));
    assert!(!text.contains("serve_forest_shared_bytes 0\n"));
    assert!(text.contains("serve_forest_layer_refs"));
    let stats = server.stats();
    assert_eq!(stats.sessions.forest.forks, 1);
    assert_eq!(stats.sessions.forest.frozen_layers, 1);
    assert!(stats.sessions.forest.shared_bytes > 0);
    assert_eq!(
        stats.sessions.forest.layer_refs, 2,
        "both live sessions hold the shared layer"
    );
    server.shutdown();

    // Traces: freeze under Alice's turn, fork under Bob's, one
    // fingerprint.
    let parsed = Value::parse(&recorder.chrome_trace().to_string()).expect("parses");
    let events = decode_events(&parsed);
    let span_of = |name: &str| -> &Event {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing {name} span"))
    };
    let freeze = span_of("prefix_freeze");
    let fork = span_of("session_fork");
    let prefix_of = |e: &Event| {
        e.args
            .get("prefix")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("prefix field on {:?}", e.name))
    };
    assert_eq!(
        prefix_of(freeze),
        prefix_of(fork),
        "the fork must name the fingerprint the freeze registered"
    );
    assert!(freeze.args.get("bytes").and_then(Value::as_f64).unwrap() > 0.0);
    assert_eq!(fork.args.get("layers").and_then(Value::as_f64), Some(1.0));
    // Each hangs under its own session turn.
    let turn_of = |spine: &Event| {
        events
            .iter()
            .find(|e| e.id == spine.parent)
            .map(|e| e.name.as_str())
            .unwrap_or("?")
    };
    assert_eq!(turn_of(freeze), "session_turn");
    assert_eq!(turn_of(fork), "session_turn");
}

/// `reset_stats` is one audited call: the metrics registry, both cache
/// tiers and the session store all read zero afterwards, while resident
/// state (cached fragments, live sessions) survives.
#[test]
fn reset_stats_zeroes_the_registry_and_every_counter_tier() {
    let sys = Arc::new(engine());
    let q = question(&sys);
    let server = QkbServer::start(
        sys.clone(),
        ServeConfig {
            shards: 1,
            cache_capacity: 16,
            batch_max: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let _ = server.query(QueryRequest::question(&q));
    let _ = server.query(QueryRequest::question(&q));
    let _ = server.query_in_session("s", QueryRequest::question(&q));
    let busy = server.registry_snapshot();
    assert!(!busy.is_zero(), "traffic must reach the registry");
    assert_eq!(busy.counter("serve_requests_total"), Some(3));
    let text = server.metrics_text();
    assert!(text.contains("serve_requests_total 3"));
    let busy_stats = server.stats();
    assert!(
        busy_stats.component.hits + busy_stats.component.misses > 0,
        "builds must reach the component resolve cache"
    );
    assert!(text.contains("serve_component_cache_hits_total"));
    assert!(text.contains("serve_component_cache_bytes"));

    server.reset_stats();
    assert!(
        server.registry_snapshot().is_zero(),
        "reset must zero every registry cell"
    );
    let stats = server.stats();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.latency_samples, 0);
    assert_eq!(stats.cache.hits + stats.cache.misses, 0);
    assert_eq!(stats.stage1.hits + stats.stage1.misses, 0);
    assert_eq!(
        stats.component.hits + stats.component.misses + stats.component.evictions,
        0,
        "reset must zero the component-cache counters"
    );
    assert!(
        stats.component.entries > 0,
        "reset must not evict cached components"
    );
    assert_eq!(stats.sessions.turns(), 0);
    assert_eq!(stats.to_json()["latency_samples"], 0u64);
    // Resident state survives: the repeat still hits, the session still
    // extends, and the registry fills back up from the same handles.
    let warm = server.query(QueryRequest::question(&q));
    assert_eq!(warm.served, Served::CacheHit);
    let turn = server.query_in_session("s", QueryRequest::question(&q));
    assert_eq!(turn.served, Served::SessionExtended);
    let snap = server.registry_snapshot();
    assert_eq!(snap.counter("serve_requests_total"), Some(2));
    server.shutdown();
}
