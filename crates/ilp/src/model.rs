//! 0-1 ILP model construction.

use qkb_util::define_id;

define_id!(VarId, "identifies a binary decision variable of an `Ilp`");

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≤ b`.
    Le,
    /// `Σ aᵢxᵢ ≥ b`.
    Ge,
    /// `Σ aᵢxᵢ = b`.
    Eq,
}

/// One linear constraint over binary variables.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable, coefficient)` terms (coefficients may repeat variables;
    /// they are aggregated on insertion).
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A 0-1 maximization problem.
#[derive(Clone, Debug, Default)]
pub struct Ilp {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Ilp {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a binary variable with the given objective coefficient
    /// (maximization).
    pub fn add_var(&mut self, obj_coeff: f64) -> VarId {
        let id = VarId::new(self.objective.len());
        self.objective.push(obj_coeff);
        id
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds a constraint; duplicate variables in `terms` are aggregated.
    ///
    /// # Panics
    /// Panics if a term references an unknown variable (programming error).
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        let mut agg: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.index() < self.objective.len(), "unknown variable {v:?}");
            match agg.iter_mut().find(|(w, _)| *w == v) {
                Some(entry) => entry.1 += c,
                None => agg.push((v, c)),
            }
        }
        agg.retain(|&(_, c)| c != 0.0);
        self.constraints.push(Constraint {
            terms: agg,
            op,
            rhs,
        });
    }

    /// Convenience: `Σ xᵢ = 1` over the given variables (choose exactly
    /// one — the paper's constraint (1)).
    pub fn exactly_one(&mut self, vars: &[VarId]) {
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        self.add_constraint(&terms, ConstraintOp::Eq, 1.0);
    }

    /// Convenience: `Σ xᵢ ≤ 1` (choose at most one).
    pub fn at_most_one(&mut self, vars: &[VarId]) {
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        self.add_constraint(&terms, ConstraintOp::Le, 1.0);
    }

    /// Convenience: `y = a ∧ b` linearization for a product variable
    /// (the joint-rel variables of Appendix A):
    /// `y ≤ a`, `y ≤ b`, `y ≥ a + b − 1`.
    pub fn and_constraint(&mut self, y: VarId, a: VarId, b: VarId) {
        self.add_constraint(&[(y, 1.0), (a, -1.0)], ConstraintOp::Le, 0.0);
        self.add_constraint(&[(y, 1.0), (b, -1.0)], ConstraintOp::Le, 0.0);
        self.add_constraint(&[(y, 1.0), (a, -1.0), (b, -1.0)], ConstraintOp::Ge, -1.0);
    }

    /// Convenience: `a = b` (the paper's sameAs coupling, constraint (2)).
    pub fn equal(&mut self, a: VarId, b: VarId) {
        self.add_constraint(&[(a, 1.0), (b, -1.0)], ConstraintOp::Eq, 0.0);
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective for a full assignment.
    pub fn objective_value(&self, assignment: &[bool]) -> f64 {
        self.objective
            .iter()
            .zip(assignment)
            .filter(|&(_, &x)| x)
            .map(|(&c, _)| c)
            .sum()
    }

    /// Checks whether a full assignment satisfies all constraints.
    pub fn is_feasible(&self, assignment: &[bool]) -> bool {
        const EPS: f64 = 1e-9;
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .terms
                .iter()
                .filter(|&&(v, _)| assignment[v.index()])
                .map(|&(_, coef)| coef)
                .sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + EPS,
                ConstraintOp::Ge => lhs >= c.rhs - EPS,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= EPS,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut m = Ilp::new();
        let a = m.add_var(2.0);
        let b = m.add_var(3.0);
        m.at_most_one(&[a, b]);
        assert_eq!(m.n_vars(), 2);
        assert!(m.is_feasible(&[true, false]));
        assert!(!m.is_feasible(&[true, true]));
        assert_eq!(m.objective_value(&[false, true]), 3.0);
    }

    #[test]
    fn duplicate_terms_aggregate() {
        let mut m = Ilp::new();
        let a = m.add_var(1.0);
        m.add_constraint(&[(a, 1.0), (a, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(m.constraints()[0].terms.len(), 1);
        assert_eq!(m.constraints()[0].terms[0].1, 2.0);
        assert!(!m.is_feasible(&[true]));
    }

    #[test]
    fn and_linearization_truth_table() {
        let mut m = Ilp::new();
        let a = m.add_var(0.0);
        let b = m.add_var(0.0);
        let y = m.add_var(0.0);
        m.and_constraint(y, a, b);
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let yv = av && bv;
            assert!(
                m.is_feasible(&[av, bv, yv]),
                "y = a AND b must be feasible for a={av} b={bv}"
            );
            assert!(
                !m.is_feasible(&[av, bv, !yv]),
                "y != a AND b must be infeasible for a={av} b={bv}"
            );
        }
    }

    #[test]
    fn equal_coupling() {
        let mut m = Ilp::new();
        let a = m.add_var(0.0);
        let b = m.add_var(0.0);
        m.equal(a, b);
        assert!(m.is_feasible(&[true, true]));
        assert!(m.is_feasible(&[false, false]));
        assert!(!m.is_feasible(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let mut m = Ilp::new();
        m.add_constraint(&[(VarId::new(5), 1.0)], ConstraintOp::Le, 1.0);
    }
}
