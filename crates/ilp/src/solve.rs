//! Branch-and-bound solver for 0-1 maximization.

use crate::model::{ConstraintOp, Ilp};

/// Tri-state assignment during search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Free,
    Zero,
    One,
}

/// Outcome status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal.
    Optimal,
    /// Node budget exhausted; best-found solution returned.
    NodeLimit,
    /// No feasible assignment exists.
    Infeasible,
}

/// A solved assignment.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Variable values.
    pub values: Vec<bool>,
    /// Objective value.
    pub objective: f64,
    /// Solve status.
    pub status: SolveStatus,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
}

/// Margin subtracted from a warm-start incumbent's objective before it is
/// used as the initial fathoming bound. It must exceed the solver's
/// `1e-12` bound-comparison tolerance by orders of magnitude so the
/// warm bound can never fathom a subtree containing a true optimum: a
/// pruned subtree has upper bound `≤ incumbent − 1e-6 + 1e-12`, strictly
/// below the incumbent's own (feasible) value. The search therefore still
/// visits — and returns — exactly the leaf a cold search would return.
const WARM_MARGIN: f64 = 1e-6;

/// The branch-and-bound solver.
pub struct Solver {
    node_limit: u64,
    incumbent: Option<Vec<bool>>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Solver with the default node budget (generous: exactness matters
    /// more than latency for the ILP comparison arm).
    pub fn new() -> Self {
        Self {
            node_limit: 5_000_000,
            incumbent: None,
        }
    }

    /// Solver with an explicit node budget.
    pub fn with_node_limit(node_limit: u64) -> Self {
        Self {
            node_limit,
            incumbent: None,
        }
    }

    /// Installs a warm-start incumbent assignment (e.g. a greedy
    /// solution). When it is feasible for the model being solved, its
    /// objective (minus the small `WARM_MARGIN` tolerance) seeds the
    /// fathoming bound —
    /// subtrees provably worse than the incumbent are cut before any
    /// leaf has been found — and the returned solution is **never worse
    /// than the incumbent**: if the search exhausts its node budget
    /// without beating it, the incumbent itself is returned
    /// (greedy-fallback soundness). An infeasible or ill-sized incumbent
    /// is ignored entirely.
    pub fn with_incumbent(mut self, values: Vec<bool>) -> Self {
        self.incumbent = Some(values);
        self
    }

    /// Maximizes the model; returns the best found assignment.
    pub fn solve(&self, model: &Ilp) -> Solution {
        let n = model.n_vars();
        // Validate the warm start against this model; discard it rather
        // than propagating an unsound bound.
        let warm: Option<(&Vec<bool>, f64)> = self
            .incumbent
            .as_ref()
            .filter(|v| v.len() == n && model.is_feasible(v))
            .map(|v| (v, model.objective_value(v)));
        let mut state = SearchState {
            model,
            vals: vec![Val::Free; n],
            best: None,
            best_obj: match warm {
                Some((_, obj)) => obj - WARM_MARGIN,
                None => f64::NEG_INFINITY,
            },
            warm_bound: warm.is_some(),
            nodes: 0,
            node_limit: self.node_limit,
            hit_limit: false,
        };
        // Branch order: descending |objective coefficient| — decide the
        // most influential variables first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            model.objective()[b]
                .abs()
                .partial_cmp(&model.objective()[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        state.branch(&order, 0);

        let status_found = if state.hit_limit {
            SolveStatus::NodeLimit
        } else {
            SolveStatus::Optimal
        };
        match state.best {
            Some(values) => {
                let objective = model.objective_value(&values);
                // Greedy-fallback soundness: a budget-truncated search
                // must never return less than the incumbent it started
                // from. (A completed search cannot: the incumbent's own
                // leaf is revisited unless something at least as good was
                // recorded first.)
                match warm {
                    Some((inc, inc_obj)) if inc_obj > objective + 1e-12 => Solution {
                        values: inc.clone(),
                        objective: inc_obj,
                        status: status_found,
                        nodes: state.nodes,
                    },
                    _ => Solution {
                        objective,
                        values,
                        status: status_found,
                        nodes: state.nodes,
                    },
                }
            }
            None => match warm {
                // Nothing beat the warm bound within the budget: fall
                // back to the incumbent itself.
                Some((inc, inc_obj)) => Solution {
                    values: inc.clone(),
                    objective: inc_obj,
                    status: status_found,
                    nodes: state.nodes,
                },
                None => Solution {
                    values: vec![false; n],
                    objective: f64::NEG_INFINITY,
                    status: if state.hit_limit {
                        SolveStatus::NodeLimit
                    } else {
                        SolveStatus::Infeasible
                    },
                    nodes: state.nodes,
                },
            },
        }
    }
}

struct SearchState<'a> {
    model: &'a Ilp,
    vals: Vec<Val>,
    best: Option<Vec<bool>>,
    best_obj: f64,
    /// `best_obj` was seeded from a feasible warm-start incumbent, so
    /// fathoming against it is sound even before any leaf was found.
    warm_bound: bool,
    nodes: u64,
    node_limit: u64,
    hit_limit: bool,
}

impl<'a> SearchState<'a> {
    /// Admissible upper bound: value of fixed ones plus all positive
    /// coefficients of free variables (LP-free but sound).
    fn upper_bound(&self) -> f64 {
        let obj = self.model.objective();
        let mut ub = 0.0;
        for (i, &v) in self.vals.iter().enumerate() {
            match v {
                Val::One => ub += obj[i],
                Val::Free if obj[i] > 0.0 => ub += obj[i],
                _ => {}
            }
        }
        ub
    }

    /// Constraint propagation: returns false on proven infeasibility and
    /// forces variables where only one value keeps a constraint satisfiable.
    fn propagate(&mut self) -> bool {
        const EPS: f64 = 1e-9;
        loop {
            let mut changed = false;
            for c in self.model.constraints() {
                // Achievable LHS range given current fixings.
                let mut lo = 0.0;
                let mut hi = 0.0;
                for &(v, coef) in &c.terms {
                    match self.vals[v.index()] {
                        Val::One => {
                            lo += coef;
                            hi += coef;
                        }
                        Val::Zero => {}
                        Val::Free => {
                            if coef > 0.0 {
                                hi += coef;
                            } else {
                                lo += coef;
                            }
                        }
                    }
                }
                let (need_lo, need_hi) = match c.op {
                    ConstraintOp::Le => (f64::NEG_INFINITY, c.rhs),
                    ConstraintOp::Ge => (c.rhs, f64::INFINITY),
                    ConstraintOp::Eq => (c.rhs, c.rhs),
                };
                if lo > need_hi + EPS || hi < need_lo - EPS {
                    return false;
                }
                // Unit forcing: if flipping a free var to a value would
                // break satisfiability, force the other value.
                for &(v, coef) in &c.terms {
                    if self.vals[v.index()] != Val::Free {
                        continue;
                    }
                    // Try v = 1: the remaining range shifts.
                    let (lo1, hi1) = if coef > 0.0 {
                        (lo + coef, hi)
                    } else {
                        (lo, hi + coef)
                    };
                    let one_ok = !(lo1 > need_hi + EPS || hi1 < need_lo - EPS);
                    // Try v = 0.
                    let (lo0, hi0) = if coef > 0.0 {
                        (lo, hi - coef)
                    } else {
                        (lo - coef, hi)
                    };
                    let zero_ok = !(lo0 > need_hi + EPS || hi0 < need_lo - EPS);
                    match (one_ok, zero_ok) {
                        (false, false) => return false,
                        (true, false) => {
                            self.vals[v.index()] = Val::One;
                            changed = true;
                        }
                        (false, true) => {
                            self.vals[v.index()] = Val::Zero;
                            changed = true;
                        }
                        (true, true) => {}
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn branch(&mut self, order: &[usize], depth: usize) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.hit_limit = true;
            return;
        }
        let saved = self.vals.clone();
        if !self.propagate() {
            self.vals = saved;
            return;
        }
        if self.upper_bound() <= self.best_obj + 1e-12 && (self.best.is_some() || self.warm_bound) {
            self.vals = saved;
            return;
        }
        // Find next free variable in branch order.
        let next = order[depth.min(order.len().saturating_sub(1))..]
            .iter()
            .chain(order[..depth.min(order.len())].iter())
            .copied()
            .find(|&i| self.vals[i] == Val::Free);
        let Some(i) = next else {
            // Complete assignment.
            let assignment: Vec<bool> = self.vals.iter().map(|&v| v == Val::One).collect();
            if self.model.is_feasible(&assignment) {
                let obj = self.model.objective_value(&assignment);
                if obj > self.best_obj {
                    self.best_obj = obj;
                    self.best = Some(assignment);
                }
            }
            self.vals = saved;
            return;
        };
        // Value ordering: try the objective-improving value first.
        let first_one = self.model.objective()[i] >= 0.0;
        for &val in if first_one {
            &[Val::One, Val::Zero]
        } else {
            &[Val::Zero, Val::One]
        } {
            self.vals[i] = val;
            self.branch(order, depth + 1);
            if self.hit_limit {
                break;
            }
            // Restore everything propagate() may have forced below.
            let keep = self.vals[i];
            self.vals.copy_from_slice(&saved);
            self.vals[i] = keep;
        }
        self.vals = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConstraintOp;

    #[test]
    fn unconstrained_picks_positive_coeffs() {
        let mut m = Ilp::new();
        let a = m.add_var(2.0);
        let b = m.add_var(-1.0);
        let c = m.add_var(3.0);
        let _ = (a, b, c);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.values, vec![true, false, true]);
        assert_eq!(sol.objective, 5.0);
    }

    #[test]
    fn knapsack_small() {
        // maximize 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 8
        let mut m = Ilp::new();
        let a = m.add_var(10.0);
        let b = m.add_var(6.0);
        let c = m.add_var(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], ConstraintOp::Le, 8.0);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, 14.0); // a + c
        assert_eq!(sol.values, vec![true, false, true]);
    }

    #[test]
    fn exactly_one_assignment() {
        // Two mentions, two candidates each; coherence favours (a1, b1).
        let mut m = Ilp::new();
        let a0 = m.add_var(0.5);
        let a1 = m.add_var(0.4);
        let b0 = m.add_var(0.3);
        let b1 = m.add_var(0.35);
        // joint bonus for (a1, b1)
        let y = m.add_var(0.6);
        m.exactly_one(&[a0, a1]);
        m.exactly_one(&[b0, b1]);
        m.and_constraint(y, a1, b1);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // (a1, b1, y) = 0.4 + 0.35 + 0.6 = 1.35 beats (a0, b0) = 0.8.
        assert!(sol.values[1] && sol.values[3] && sol.values[4]);
        assert!((sol.objective - 1.35).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Ilp::new();
        let a = m.add_var(1.0);
        m.add_constraint(&[(a, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_coupling_respected() {
        let mut m = Ilp::new();
        let a = m.add_var(1.0);
        let b = m.add_var(-0.5);
        m.equal(a, b);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // a=b=1 gives 0.5 > 0 = a=b=0.
        assert_eq!(sol.values, vec![true, true]);
    }

    #[test]
    fn node_limit_returns_best_so_far() {
        let mut m = Ilp::new();
        let vars: Vec<_> = (0..30).map(|i| m.add_var(1.0 + (i % 3) as f64)).collect();
        for w in vars.chunks(3) {
            m.at_most_one(w);
        }
        let sol = Solver::with_node_limit(10).solve(&m);
        assert_eq!(sol.status, SolveStatus::NodeLimit);
    }

    #[test]
    fn negative_rhs_ge_constraints() {
        let mut m = Ilp::new();
        let a = m.add_var(1.0);
        let b = m.add_var(1.0);
        // a + b >= -1 is vacuous.
        m.add_constraint(&[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, -1.0);
        let sol = Solver::new().solve(&m);
        assert_eq!(sol.objective, 2.0);
    }

    #[test]
    fn warm_start_matches_cold_solution_and_prunes() {
        // maximize 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 8; optimum a+c=14.
        let mut m = Ilp::new();
        let a = m.add_var(10.0);
        let b = m.add_var(6.0);
        let c = m.add_var(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], ConstraintOp::Le, 8.0);
        let cold = Solver::new().solve(&m);
        // Warm-start from the suboptimal greedy pick {b, c} (value 10).
        let warm = Solver::new()
            .with_incumbent(vec![false, true, true])
            .solve(&m);
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert_eq!(
            warm.values, cold.values,
            "warm start must not change the optimum"
        );
        assert_eq!(warm.objective, cold.objective);
        assert!(
            warm.nodes <= cold.nodes,
            "warm bound must not grow the tree: {} vs {}",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn warm_start_never_worsens_objective() {
        // The incumbent is already optimal; the solver must return a
        // solution at least as good even under a tiny node budget.
        let mut m = Ilp::new();
        let vars: Vec<_> = (0..24).map(|i| m.add_var(1.0 + (i % 5) as f64)).collect();
        for w in vars.chunks(3) {
            m.exactly_one(w);
        }
        let incumbent: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
        let inc_obj = m.objective_value(&incumbent);
        for budget in [1u64, 3, 10, 100] {
            let sol = Solver::with_node_limit(budget)
                .with_incumbent(incumbent.clone())
                .solve(&m);
            assert!(
                sol.objective + 1e-9 >= inc_obj,
                "budget {budget}: {} < incumbent {inc_obj}",
                sol.objective
            );
            assert!(m.is_feasible(&sol.values));
        }
    }

    #[test]
    fn node_budget_exhaustion_falls_back_to_incumbent() {
        let mut m = Ilp::new();
        let vars: Vec<_> = (0..30).map(|i| m.add_var(1.0 + (i % 3) as f64)).collect();
        for w in vars.chunks(3) {
            m.at_most_one(w);
        }
        let incumbent = vec![false; 30];
        let sol = Solver::with_node_limit(1)
            .with_incumbent(incumbent.clone())
            .solve(&m);
        assert_eq!(sol.status, SolveStatus::NodeLimit);
        assert_eq!(sol.values, incumbent);
        assert_eq!(sol.objective, 0.0);
        let _ = vars;
    }

    #[test]
    fn infeasible_incumbent_is_ignored() {
        let mut m = Ilp::new();
        let a = m.add_var(2.0);
        let b = m.add_var(1.0);
        m.at_most_one(&[a, b]);
        // Both-on violates at_most_one; the solver must discard it and
        // still find the true optimum.
        let sol = Solver::new().with_incumbent(vec![true, true]).solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.values, vec![true, false]);
        // A wrong-length incumbent is ignored too.
        let sol = Solver::new().with_incumbent(vec![true]).solve(&m);
        assert_eq!(sol.values, vec![true, false]);
    }

    /// Exhaustive cross-check against brute force on random small models.
    #[test]
    fn matches_brute_force_on_random_models() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = 2 + (trial % 8);
            let mut m = Ilp::new();
            let vars: Vec<_> = (0..n)
                .map(|_| m.add_var(rng.gen_range(-5.0..5.0)))
                .collect();
            for _ in 0..(n / 2 + 1) {
                let k = rng.gen_range(1..=n.min(3));
                let mut terms = Vec::new();
                for _ in 0..k {
                    terms.push((
                        vars[rng.gen_range(0..n)],
                        rng.gen_range(-3.0f64..3.0).round(),
                    ));
                }
                let op = match rng.gen_range(0..3) {
                    0 => ConstraintOp::Le,
                    1 => ConstraintOp::Ge,
                    _ => ConstraintOp::Eq,
                };
                let rhs = rng.gen_range(-2.0f64..3.0).round();
                m.add_constraint(&terms, op, rhs);
            }
            // Brute force.
            let mut best = f64::NEG_INFINITY;
            for mask in 0u32..(1 << n) {
                let assign: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                if m.is_feasible(&assign) {
                    best = best.max(m.objective_value(&assign));
                }
            }
            let sol = Solver::new().solve(&m);
            if best == f64::NEG_INFINITY {
                assert_eq!(sol.status, SolveStatus::Infeasible, "trial {trial}");
            } else {
                assert_eq!(sol.status, SolveStatus::Optimal, "trial {trial}");
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "trial {trial}: got {} want {best}",
                    sol.objective
                );
            }
        }
    }
}
