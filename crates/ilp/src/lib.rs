//! # qkb-ilp
//!
//! An exact 0-1 integer linear programming solver by branch-and-bound —
//! the substitute for the Gurobi solver the paper uses for its ILP variant
//! of joint NED+CR (Appendix A, Table 6).
//!
//! The solver handles maximization of a linear objective over binary
//! variables under linear ≤/≥/= constraints. It is exact: given enough
//! node budget it returns the optimum (QKBfly-ilp's +1–2% precision over
//! the greedy heuristic arises from this exactness). Super-linear runtime
//! growth on large per-document graphs — the paper's Table 6 observation —
//! arises structurally from branching.
//!
//! Techniques: constraint propagation (unit forcing + infeasibility
//! pruning), an admissible fractional bound, best-first value ordering and
//! a node budget with best-so-far fallback.

pub mod model;
pub mod solve;

pub use model::{Constraint, ConstraintOp, Ilp, VarId};
pub use solve::{Solution, SolveStatus, Solver};
