//! Property-based test: the branch-and-bound solver is exact — it matches
//! brute-force enumeration on arbitrary small 0-1 programs.

use proptest::prelude::*;
use qkb_ilp::{ConstraintOp, Ilp, SolveStatus, Solver};

/// One random constraint: weighted terms, an operator code, and the rhs.
type RandConstraint = (Vec<(usize, f64)>, u8, f64);

#[derive(Debug, Clone)]
struct RandModel {
    objective: Vec<f64>,
    constraints: Vec<RandConstraint>,
}

fn model_strategy() -> impl Strategy<Value = RandModel> {
    (2usize..9).prop_flat_map(|n| {
        let obj = proptest::collection::vec(-5.0f64..5.0, n..=n);
        let cons = proptest::collection::vec(
            (
                proptest::collection::vec((0..n, -3.0f64..3.0), 1..4),
                0u8..3,
                -2.0f64..4.0,
            ),
            0..5,
        );
        (obj, cons).prop_map(|(objective, constraints)| RandModel {
            objective,
            constraints,
        })
    })
}

fn build(m: &RandModel) -> Ilp {
    let mut ilp = Ilp::new();
    let vars: Vec<_> = m.objective.iter().map(|&c| ilp.add_var(c)).collect();
    for (terms, op, rhs) in &m.constraints {
        let t: Vec<_> = terms
            .iter()
            .map(|&(i, c)| (vars[i], (c * 2.0).round() / 2.0))
            .collect();
        let op = match op {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        ilp.add_constraint(&t, op, (rhs * 2.0).round() / 2.0);
    }
    ilp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solver optimum equals brute force on every feasible model, and it
    /// reports infeasibility exactly when brute force finds nothing.
    #[test]
    fn solver_is_exact(m in model_strategy()) {
        let ilp = build(&m);
        let n = ilp.n_vars();
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let assign: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if ilp.is_feasible(&assign) {
                best = best.max(ilp.objective_value(&assign));
            }
        }
        let sol = Solver::new().solve(&ilp);
        if best == f64::NEG_INFINITY {
            prop_assert_eq!(sol.status, SolveStatus::Infeasible);
        } else {
            prop_assert_eq!(sol.status, SolveStatus::Optimal);
            prop_assert!((sol.objective - best).abs() < 1e-6,
                "solver {} vs brute force {}", sol.objective, best);
            prop_assert!(ilp.is_feasible(&sol.values));
        }
    }
}
