//! Observability in action: serve a few queries with the flight
//! recorder attached, then write `trace.json` (Chrome-trace format —
//! open it in Perfetto / `chrome://tracing`) and a Prometheus-style
//! metrics text dump next to it.
//!
//! Run: `cargo run --release --example trace_demo [-- OUT_DIR]`

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_obs::{Recorder, RecorderConfig};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // --- the knowledge system, as in serve_demo ---
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 20, 31).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 10, 32).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 15, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let system = QaSystem::new(world.clone(), docs, qkb);

    // --- a live recorder: flight rings plus a slow-query log that keeps
    // the full span tree of anything slower than 1 ms ---
    let recorder = Recorder::enabled(RecorderConfig {
        slow_threshold: Some(Duration::from_millis(1)),
        ..RecorderConfig::default()
    });
    let server = QkbServer::start(
        system,
        ServeConfig {
            shards: 2,
            cache_capacity: 16,
            recorder: recorder.clone(),
            ..ServeConfig::default()
        },
    );

    // --- traffic: cold builds, a cache hit, and two session turns ---
    let questions: Vec<String> = trends_test(&world, 3, 35)
        .into_iter()
        .map(|q| q.text)
        .collect();
    for q in questions.iter().chain(questions.first()) {
        let r = server.query(QueryRequest::question(q));
        println!(
            "{:?}  {:>3} facts  {:>5.1} ms  {q}",
            r.served,
            r.n_facts,
            r.latency.as_secs_f64() * 1000.0
        );
    }
    for q in questions.iter().take(2) {
        let r = server.query_in_session("demo", QueryRequest::question(q));
        println!(
            "{:?}  {:>3} facts  {:>5.1} ms  {q}",
            r.served,
            r.n_facts,
            r.latency.as_secs_f64() * 1000.0
        );
    }

    // --- exports ---
    let trace_path = format!("{out_dir}/trace.json");
    let records = recorder.records();
    std::fs::write(&trace_path, qkb_obs::chrome_trace(&records).to_string()).expect("write trace");
    println!(
        "\n{} spans ({} dropped) -> {trace_path} (load in Perfetto or chrome://tracing)",
        records.len(),
        recorder.dropped()
    );

    let metrics_path = format!("{out_dir}/metrics.txt");
    std::fs::write(&metrics_path, server.metrics_text()).expect("write metrics");
    println!("metrics registry   -> {metrics_path}");

    let slow = recorder.slow_traces();
    println!("slow-query log     -> {} traces over 1 ms:", slow.len());
    for t in slow.iter().take(5) {
        println!(
            "  {}  {:.1} ms  ({} spans)",
            t.root_name,
            t.dur_us as f64 / 1000.0,
            t.records.len()
        );
    }

    let s = server.stats();
    println!(
        "\nstats: {} requests, p50 {:.0} ms, p95 {:.0} ms over {} samples",
        s.requests, s.latency_p50_ms, s.latency_p95_ms, s.latency_samples
    );
    server.shutdown();
}
