//! Ad-hoc QA on emerging events (§7.4): questions whose answers exist only
//! in fresh news are answered from a question-specific on-the-fly KB,
//! while a static-KB lookup comes back empty.
//!
//! Run: `cargo run --example news_qa`

use qkb_corpus::questions::{trends_test, webquestions_train};
use qkb_corpus::world::{World, WorldConfig};
use qkb_qa::{QaMethod, QaSystem};

fn main() {
    let world = std::sync::Arc::new(World::generate(WorldConfig::default()));
    let bg = qkb_corpus::background::background_corpus(&world, 30, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);

    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 25, 31).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 12, 32).docs);
    let mut system = QaSystem::new(world.clone(), docs, qkb);

    let train = webquestions_train(&world, 15, 33);
    println!(
        "training the answer classifier on {} questions ...",
        train.len()
    );
    system.train(&train, 34);

    let questions = trends_test(&world, 8, 35);
    for q in &questions {
        println!(
            "\nQ: {} {}",
            q.text,
            if q.about_recent {
                "(emerging event)"
            } else {
                ""
            }
        );
        println!("   gold: {:?}", q.gold.first().map(|g| &g[0]));
        println!("   on-the-fly KB: {:?}", system.answer(q, QaMethod::Qkbfly));
        println!(
            "   static KB:     {:?}",
            system.answer(q, QaMethod::StaticKb)
        );
    }
}
