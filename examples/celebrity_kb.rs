//! Tables 1 & 2: an on-the-fly KB built from a generated celebrity page
//! and from news articles — entities & mentions, relations & patterns,
//! binary and higher-arity facts, with emerging entities flagged `*`.
//!
//! Run: `cargo run --example celebrity_kb`

use qkb_corpus::world::{Domain, World, WorldConfig};
use qkb_kb::KbEntityKind;

fn main() {
    let world = World::generate(WorldConfig::default());
    let bg = qkb_corpus::background::background_corpus(&world, 40, 7);
    let stats = qkb_corpus::background::build_stats(&world, &bg);

    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let system = qkbfly::Qkbfly::new(repo, patterns, stats);

    // --- Table 1 style: one celebrity page ---
    let actor = world.entities_of(Domain::Film)[0];
    let page = qkb_corpus::docgen::wiki_corpus(&world, 40, 11)
        .docs
        .into_iter()
        .find(|d| d.main_entity == Some(actor))
        .unwrap_or_else(|| {
            qkb_corpus::docgen::wiki_corpus(&world, 1, 11)
                .docs
                .remove(0)
        });
    println!("== Page: {} ==", page.title);
    let result = system.build_kb(std::slice::from_ref(&page.text));

    println!("\nEntities & Mentions:");
    for e in result.kb.iter_entities().take(8) {
        let mentions: Vec<&str> = e.mentions.iter().map(String::as_str).collect();
        println!("  {} -> {:?}", e.display(), mentions);
    }
    println!("\nFacts (binary and higher-arity):");
    for f in result.kb.iter_facts().take(10) {
        println!("  {}", result.render(f));
    }
    let emerging = result
        .kb
        .iter_entities()
        .filter(|e| e.kind == KbEntityKind::Emerging)
        .count();
    println!("\n({emerging} emerging entities flagged with *)");

    // --- Table 2 style: news articles with recent facts ---
    println!("\n== News (recent facts absent from any static KB) ==");
    let news = qkb_corpus::docgen::news_corpus(&world, 3, 12);
    for doc in &news.docs {
        let r = system.build_kb(std::slice::from_ref(&doc.text));
        println!("\n{}:", doc.title);
        for f in r.kb.iter_facts().take(3) {
            println!("  {}", r.render(f));
        }
    }
}
