//! Interactive exploration over a session-scoped streaming KB (§6): one
//! client session issues follow-up questions, and every turn's retrieved
//! documents stream into the same growing KB — already-seen documents
//! are deduplicated, entity ids stay stable, and answers come from
//! everything accumulated so far.
//!
//! Run: `cargo run --release --example session_demo`

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig};
use std::sync::Arc;

fn main() {
    // --- load the knowledge system (one-time, shared by all shards) ---
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 20, 31).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 10, 32).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 15, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let system = QaSystem::new(world.clone(), docs, qkb);

    let server = QkbServer::start(
        system,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    );
    println!("server up: 2 shards, session store enabled\n");

    // --- one exploration session: four follow-up questions ---
    let questions: Vec<String> = trends_test(&world, 4, 35)
        .into_iter()
        .map(|q| q.text)
        .collect();
    let mut last_docs = 0;
    let mut last_facts = 0;
    for (turn, q) in questions.iter().enumerate() {
        let r = server.query_in_session("explorer", QueryRequest::question(q));
        println!(
            "turn {turn} [{:?}]\n  Q: {q}\n  A: {}\n  session KB: {} docs (+{}), {} facts (+{}) \
             [{:.0} ms]\n",
            r.served,
            if r.answers.is_empty() {
                "(no answer)".to_string()
            } else {
                r.answers.join("; ")
            },
            r.n_docs,
            r.n_docs - last_docs,
            r.n_facts,
            r.n_facts - last_facts,
            r.latency.as_secs_f64() * 1000.0
        );
        last_docs = r.n_docs;
        last_facts = r.n_facts;
    }

    // --- a second session stays isolated but shares the stage-1 cache ---
    let r = server.query_in_session("other", QueryRequest::question(&questions[0]));
    println!(
        "second session starts cold [{:?}]: {} docs, {} facts\n",
        r.served, r.n_docs, r.n_facts
    );

    // --- the session hit/dedup stats line ---
    let stats = server.stats();
    let s = &stats.sessions;
    println!(
        "sessions: {} live / {} created ({} evicted) | turns: {} cold + {} extended | \
         docs: {} merged, {} deduped ({:.0}% dedup) | stage-1 hit rate {:.0}% | \
         component-cache hit rate {:.0}%",
        s.live,
        s.created,
        s.evicted_ttl + s.evicted_pressure,
        s.turns_cold,
        s.turns_extended,
        s.docs_merged,
        s.docs_deduped,
        s.dedup_rate() * 100.0,
        stats.stage1_hit_rate() * 100.0,
        stats.component_hit_rate() * 100.0
    );
    server.shutdown();
}
