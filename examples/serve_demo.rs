//! The serving front-end in action: a sharded `qkb-serve` server over a
//! generated news/wiki corpus, showing cold builds, fragment-cache hits,
//! request coalescing across concurrent clients, and the stats snapshot.
//!
//! Run: `cargo run --release --example serve_demo`

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_qa::QaSystem;
use qkb_serve::{QkbServer, QueryRequest, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- load the knowledge system (one-time, shared by all shards) ---
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 20, 31).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 10, 32).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 15, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let system = QaSystem::new(world.clone(), docs, qkb);

    // --- start the server: 2 shards, small fragment cache ---
    let server = QkbServer::start(
        system,
        ServeConfig {
            shards: 2,
            cache_capacity: 16,
            batch_window: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );
    println!("server up: 2 shards, 16-fragment cache\n");

    // --- a few questions, with a repeat to show the cache ---
    let questions: Vec<String> = trends_test(&world, 3, 35)
        .into_iter()
        .map(|q| q.text)
        .collect();
    for q in questions.iter().chain(questions.first()) {
        let r = server.query(QueryRequest::question(q));
        println!(
            "Q: {q}\nA: {} [{:?}, {} docs, {} facts, {:.0} ms]\n",
            if r.answers.is_empty() {
                "(no answer)".to_string()
            } else {
                r.answers.join("; ")
            },
            r.served,
            r.n_docs,
            r.n_facts,
            r.latency.as_secs_f64() * 1000.0
        );
    }

    // --- concurrent identical queries coalesce onto one build ---
    let hot = questions[1].clone();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = server.client();
            let hot = hot.clone();
            scope.spawn(move || client.query(QueryRequest::question(&hot)));
        }
    });

    // --- an entity-seed query returns the fragment's facts ---
    let seed = world.entity(world.facts[0].subject).canonical.clone();
    let r = server.query(QueryRequest::entity(&seed));
    println!("facts about {seed}:");
    for fact in r.answers.iter().take(5) {
        println!("  {fact}");
    }

    // --- the snapshot the ops dashboard would scrape ---
    let s = server.stats();
    println!(
        "\nstats: {} requests, {:.1} req/s, p50 {:.0} ms, p95 {:.0} ms",
        s.requests, s.throughput_rps, s.latency_p50_ms, s.latency_p95_ms
    );
    println!(
        "fragment cache: {} hits / {} misses / {} evictions (hit rate {:.0}%)",
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache_hit_rate() * 100.0
    );
    println!(
        "stage-1 cache:  {} hits / {} misses, {} artifacts ~{} KiB (hit rate {:.0}%) — \
         overlapping queries reuse per-document work",
        s.stage1.hits,
        s.stage1.misses,
        s.stage1.entries,
        s.stage1.approx_bytes / 1024,
        s.stage1_hit_rate() * 100.0
    );
    println!(
        "component cache: {} hits / {} misses, {} components ~{} KiB (hit rate {:.0}%) — \
         overlapping documents skip the solver",
        s.component.hits,
        s.component.misses,
        s.component.entries,
        s.component.approx_bytes / 1024,
        s.component_hit_rate() * 100.0
    );
    println!(
        "builds: {} cold + {} assembled in {} grouped rounds, {} docs; \
         coalesced: {} in-batch, {} in-flight",
        s.cold_builds,
        s.assembled_builds,
        s.build_rounds,
        s.docs_built,
        s.batch_coalesced,
        s.inflight_coalesced
    );
    server.shutdown();
}
