//! Figures 3 & 4: the §6 demo as a CLI — choose a query, build an
//! on-the-fly KB from retrieved documents, then filter facts by subject /
//! predicate / object, including `Type:` search.
//!
//! Run: `cargo run --example ondemand_cli -- "Bob Dylan"`
//!      `cargo run --example ondemand_cli -- <query> [subject-filter] [predicate-filter]`
//! With a `Type:` prefix the subject filter matches by semantic type, e.g.
//! `cargo run --example ondemand_cli -- music Type:MUSICAL_ARTIST release`

use qkb_corpus::world::{World, WorldConfig};
use qkb_qa::Bm25Index;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query = args.first().cloned().unwrap_or_else(|| "prize".to_string());
    let subject_filter = args.get(1).cloned();
    let predicate_filter = args.get(2).cloned();

    let world = World::generate(WorldConfig::default());
    let bg = qkb_corpus::background::background_corpus(&world, 40, 7);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);

    // The document source: generated wiki + news corpus with BM25 retrieval
    // (the demo's en.wikipedia.org / bbc.com selector).
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 30, 21).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 10, 22).docs);
    let index = Bm25Index::build(docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));

    let hits = index.search(&query, 5);
    println!("query: {query:?} -> {} documents (LOG:)", hits.len());
    for &(d, score) in &hits {
        println!("  {:.2}  {}", score, docs[d].title);
    }

    let texts: Vec<String> = hits.iter().map(|&(d, _)| docs[d].text.clone()).collect();
    let system = qkbfly::Qkbfly::new(repo, patterns, stats);
    let result = system.build_kb(&texts);
    println!(
        "\nbuilt on-the-fly KB: {} facts, {} entities ({} emerging)",
        result.kb.n_facts(),
        result.kb.n_entities(),
        result.kb.n_emerging()
    );

    let matches = result.kb.search(
        subject_filter.as_deref(),
        predicate_filter.as_deref(),
        None,
        system.repo(),
        system.patterns(),
    );
    println!(
        "\nShow {} out of {} facts (subject={:?}, predicate={:?}):",
        matches.len().min(15),
        result.kb.n_facts(),
        subject_filter,
        predicate_filter
    );
    for f in matches.into_iter().take(15) {
        println!("  {}", result.render(f));
    }
}
