//! Quickstart: build an on-the-fly KB from raw text with a tiny
//! hand-rolled entity repository — the paper's Figure 2 sentences.
//!
//! Run: `cargo run --example quickstart`

use qkb_kb::{EntityRepository, Gender, PatternRepository, StatsBuilder};
use qkbfly::Qkbfly;

fn main() {
    // Background repositories (normally generated from a world model or
    // loaded from dumps; here: three entities, a few anchors).
    let mut repo = EntityRepository::new();
    let actor = repo.type_system().get("ACTOR").expect("standard type");
    let org = repo.type_system().get("FOUNDATION").expect("standard type");
    let pitt = repo.add_entity(
        "Brad Pitt",
        &["William Bradley Pitt", "Pitt"],
        Gender::Male,
        vec![actor],
    );
    let one = repo.add_entity("ONE Campaign", &[], Gender::Neutral, vec![org]);
    let dpf = repo.add_entity("Daniel Pearl Foundation", &[], Gender::Neutral, vec![org]);

    let mut stats = StatsBuilder::new();
    stats.add_anchor("Brad Pitt", pitt);
    stats.add_anchor("Pitt", pitt);
    stats.add_anchor("ONE Campaign", one);
    stats.add_anchor("Daniel Pearl Foundation", dpf);
    stats.add_entity_article(pitt, ["actor", "film", "donate", "support"]);
    stats.add_entity_article(one, ["campaign", "poverty", "support"]);
    stats.add_entity_article(dpf, ["foundation", "journalist", "donate"]);

    let system = Qkbfly::new(repo, PatternRepository::standard(), stats.finalize());

    let docs = vec!["Brad Pitt is an actor and he supports the ONE Campaign. \
         In 2002, Pitt donated $100,000 to the Daniel Pearl Foundation."
        .to_string()];
    let result = system.build_kb(&docs);

    println!(
        "on-the-fly KB: {} entities ({} emerging), {} facts\n",
        result.kb.n_entities(),
        result.kb.n_emerging(),
        result.kb.n_facts()
    );
    for fact in result.kb.iter_facts() {
        println!(
            "  {}   (confidence {:.2}, arity {})",
            result.render(fact),
            fact.confidence,
            fact.arity()
        );
    }
    println!(
        "\nstage timings: preprocess {:?}, graph {:?}, resolve {:?}, canonicalize {:?}",
        result.timings.preprocess,
        result.timings.graph,
        result.timings.resolve,
        result.timings.canonicalize
    );
}
