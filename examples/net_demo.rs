//! The durable network tier end to end: a `qkb_net` server over loopback
//! TCP with a write-ahead session journal, a client session driven over
//! the framed wire protocol, a simulated crash (the server is dropped
//! without warning), and a restart that replays the journal — the
//! session resumes warm, byte-identical to an uninterrupted run.
//!
//! Run: `cargo run --release --example net_demo`

use qkb_corpus::questions::trends_test;
use qkb_corpus::world::{World, WorldConfig};
use qkb_net::{JournalConfig, NetClient, NetConfig, QkbNetServer};
use qkb_qa::QaSystem;
use qkb_serve::QueryRequest;
use std::sync::Arc;

fn main() {
    // --- load the knowledge system (one-time, shared by all shards) ---
    let world = Arc::new(World::generate(WorldConfig::default()));
    let mut docs = qkb_corpus::docgen::wiki_corpus(&world, 20, 31).docs;
    docs.extend(qkb_corpus::docgen::news_corpus(&world, 10, 32).docs);
    let bg = qkb_corpus::background::background_corpus(&world, 15, 5);
    let stats = qkb_corpus::background::build_stats(&world, &bg);
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    let mut patterns = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut patterns);
    let qkb = qkbfly::Qkbfly::new(repo, patterns, stats);
    let system = Arc::new(QaSystem::new(world.clone(), docs, qkb));

    let journal_dir = std::env::temp_dir().join(format!("qkb_net_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let config = || NetConfig {
        journal: Some(JournalConfig::new(&journal_dir)),
        ..NetConfig::default()
    };

    // --- life 1: serve a three-turn session over real TCP ---
    let server = QkbNetServer::start(system.clone(), config()).expect("start server");
    let addr = server.local_addr();
    println!(
        "server up on {addr}, journaling to {}\n",
        journal_dir.display()
    );

    let questions: Vec<String> = trends_test(&world, 3, 35)
        .into_iter()
        .map(|q| q.text)
        .collect();
    let mut client = NetClient::connect(addr).expect("connect");
    for (turn, q) in questions.iter().enumerate() {
        let r = client
            .query_in_session("explorer", QueryRequest::question(q))
            .expect("session turn");
        println!(
            "turn {turn} [{:?}]\n  Q: {q}\n  A: {}\n  session KB: {} docs, {} facts\n",
            r.served,
            if r.answers.is_empty() {
                "(no answer)".to_string()
            } else {
                r.answers.join("; ")
            },
            r.n_docs,
            r.n_facts,
        );
    }
    let kb_before = server.session_kb_json("explorer").expect("session exists");

    // --- crash: drop the server mid-flight, no graceful goodbye ---
    drop(client);
    drop(server);
    println!("-- server killed --\n");

    // --- life 2: restart; the journal replays the committed turns ---
    let server = QkbNetServer::start(system, config()).expect("restart server");
    let replay = server.replay_report();
    println!(
        "restarted on {}: replayed {} journaled turns ({} torn, {} dropped)",
        server.local_addr(),
        replay.replayed_turns,
        replay.torn_tails,
        replay.dropped_records
    );
    let kb_after = server
        .session_kb_json("explorer")
        .expect("session replayed");
    println!(
        "session KB after replay is byte-identical to before the crash: {}",
        kb_before == kb_after
    );
    assert_eq!(kb_before, kb_after);

    // --- the session resumes warm, not cold ---
    let mut client = NetClient::connect(server.local_addr()).expect("reconnect");
    let followup: String = trends_test(&world, 4, 35).remove(3).text;
    let r = client
        .query_in_session("explorer", QueryRequest::question(&followup))
        .expect("follow-up turn");
    println!(
        "follow-up turn after the crash [{:?}]: {} docs, {} facts",
        r.served, r.n_docs, r.n_facts
    );

    let _ = std::fs::remove_dir_all(&journal_dir);
}
