//! Figure 2: the semantic graph built from the paper's two example
//! sentences — clause, noun-phrase, pronoun and entity nodes with
//! depends / relation / sameAs / means edges.
//!
//! Run: `cargo run --example semantic_graph`

use qkb_kb::{BackgroundStats, EntityRepository, Gender};
use qkb_nlp::Pipeline;
use qkb_openie::ClausIe;
use qkbfly::build::{build_graph, BuildConfig};

fn main() {
    let mut repo = EntityRepository::new();
    let actor = repo.type_system().get("ACTOR").expect("type");
    let org = repo.type_system().get("FOUNDATION").expect("type");
    repo.add_entity(
        "Brad Pitt",
        &["William Bradley Pitt", "Pitt"],
        Gender::Male,
        vec![actor],
    );
    repo.add_entity("ONE Campaign", &[], Gender::Neutral, vec![org]);
    repo.add_entity("Daniel Pearl Foundation", &[], Gender::Neutral, vec![org]);

    let text = "Brad Pitt is an actor and he supports the ONE Campaign. \
                In 2002, Pitt donated $100,000 to the Daniel Pearl Foundation.";
    println!("input:\n  {text}\n");

    let nlp = Pipeline::with_gazetteer(repo.gazetteer());
    let doc = nlp.annotate(text);
    let clausie = ClausIe::new();
    let clauses: Vec<Vec<qkb_openie::Clause>> =
        doc.sentences.iter().map(|s| clausie.detect(s)).collect();

    println!("clauses:");
    for (s, cs) in clauses.iter().enumerate() {
        for c in cs {
            let args: Vec<String> = c
                .non_subject_args()
                .iter()
                .map(|a| format!("\"{}\"", a.text(&doc.sentences[s])))
                .collect();
            println!(
                "  s{s} {}: \"{}\" --{}--> [{}]",
                c.ctype,
                c.subject.text(&doc.sentences[s]),
                c.verb_lemma,
                args.join(", ")
            );
        }
    }

    let built = build_graph(
        &doc,
        &clauses,
        &repo,
        &BackgroundStats::empty(),
        BuildConfig::default(),
    );
    println!("\nsemantic graph (Figure 2):");
    print!("{}", built.graph.render(&repo));
}
