//! Cross-crate integration tests: world → corpora → background stats →
//! QKBfly → on-the-fly KB, plus the evaluation machinery.

use qkb_corpus::world::{World, WorldConfig};
use qkb_corpus::Assessor;
use qkbfly::{Qkbfly, QkbflyConfig, SolverKind, Variant};

fn repo_of(world: &World) -> qkb_kb::EntityRepository {
    let mut repo = qkb_kb::EntityRepository::new();
    for e in world.repo.iter() {
        let aliases: Vec<&str> = e.aliases.iter().map(String::as_str).collect();
        repo.add_entity(&e.canonical, &aliases, e.gender, e.types.clone());
    }
    repo
}

fn patterns_of() -> qkb_kb::PatternRepository {
    let mut p = qkb_kb::PatternRepository::standard();
    qkb_corpus::render::extend_patterns(&mut p);
    p
}

fn system(world: &World, variant: Variant, solver: SolverKind) -> Qkbfly {
    let bg = qkb_corpus::background::background_corpus(world, 30, 5);
    let stats = qkb_corpus::background::build_stats(world, &bg);
    Qkbfly::with_config(
        repo_of(world),
        patterns_of(),
        stats,
        QkbflyConfig {
            variant,
            solver,
            ..Default::default()
        },
    )
}

#[test]
fn end_to_end_kb_construction_on_generated_pages() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 8, 77);
    let sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let result = sys.build_kb(&texts);
    assert!(result.kb.n_facts() > 10, "facts: {}", result.kb.n_facts());
    assert!(!result.links.is_empty());
    // Every kept fact's confidence respects τ.
    for f in result.kb.iter_facts() {
        assert!(f.confidence >= sys.config().tau - 1e-9);
    }
}

#[test]
fn assessed_precision_is_reasonable_for_joint_variant() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 10, 78);
    let sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let assessor = Assessor::new(&world);
    let mut correct = 0usize;
    let mut total = 0usize;
    for doc in &corpus.docs {
        let result = sys.build_kb(std::slice::from_ref(&doc.text));
        for r in &result.records {
            if !r.kept || !r.extraction.is_triple() {
                continue;
            }
            total += 1;
            if assessor.extraction_correct_linked(doc, &r.extraction, &r.slot_entities) {
                correct += 1;
            }
        }
    }
    assert!(total > 20, "too few extractions: {total}");
    let precision = correct as f64 / total as f64;
    assert!(
        precision > 0.6,
        "joint precision {precision:.2} below sanity floor"
    );
}

#[test]
fn variants_order_extraction_volume() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 6, 79);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let joint_sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let joint = joint_sys.build_kb(&texts);
    let noun_sys = system(&world, Variant::NounOnly, SolverKind::Greedy);
    let noun = noun_sys.build_kb(&texts);
    // No-CR drops the pronoun-mediated extractions.
    assert!(joint.records.len() >= noun.records.len());
}

#[test]
fn ilp_and_greedy_agree_on_most_links() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 3, 80);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let greedy_sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let greedy = greedy_sys.build_kb(&texts);
    let ilp_sys = system(&world, Variant::Joint, SolverKind::Ilp);
    let ilp = ilp_sys.build_kb(&texts);
    assert!(!greedy.links.is_empty() && !ilp.links.is_empty());
    // Compare link decisions on shared (doc, sentence, phrase) keys.
    let key = |l: &qkbfly::LinkRecord| (l.doc, l.sentence, l.phrase.clone());
    let gm: std::collections::HashMap<_, _> =
        greedy.links.iter().map(|l| (key(l), l.entity)).collect();
    let mut same = 0usize;
    let mut both = 0usize;
    for l in &ilp.links {
        if let Some(&e) = gm.get(&key(l)) {
            both += 1;
            if e == l.entity {
                same += 1;
            }
        }
    }
    assert!(both > 0);
    assert!(
        same as f64 / both as f64 > 0.8,
        "greedy and exact inference should mostly agree ({same}/{both})"
    );
}

#[test]
fn emerging_entities_survive_canonicalization() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::news_corpus(&world, 6, 81);
    let sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let result = sys.build_kb(&texts);
    assert!(
        result.kb.n_emerging() > 0,
        "news corpora introduce out-of-repository entities"
    );
}

#[test]
fn deepdive_and_qkbfly_both_find_spouses() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 20, 82);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();

    let mut dd = qkb_deepdive::DeepDive::new(world.repo.gazetteer());
    let positives: Vec<(String, String)> = world
        .spouse_pairs()
        .into_iter()
        .map(|(a, b)| {
            (
                world.entity(a).canonical.clone(),
                world.entity(b).canonical.clone(),
            )
        })
        .collect();
    assert!(!positives.is_empty());
    dd.train(&texts, &positives, 83);
    let dd_out = dd.extract(&texts, 0.5);
    assert!(!dd_out.is_empty(), "DeepDive finds spouse mentions");

    let sys = system(&world, Variant::Joint, SolverKind::Greedy);
    let result = sys.build_kb(&texts);
    let patterns = patterns_of();
    let married = patterns.lookup("married to").expect("synset");
    let married_name = patterns.canonical(married).to_string();
    let qk_married = result
        .kb
        .iter_facts()
        .filter(|f| match &f.relation {
            qkb_kb::RelationRef::Canonical(id) => patterns.canonical(*id) == married_name,
            qkb_kb::RelationRef::Novel(p) => p.starts_with("marry"),
        })
        .count();
    assert!(qk_married > 0, "QKBfly extracts married-to facts too");
}

#[test]
fn deterministic_given_seeds() {
    let world = World::generate(WorldConfig::default());
    let corpus = qkb_corpus::docgen::wiki_corpus(&world, 3, 84);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let sys_a = system(&world, Variant::Joint, SolverKind::Greedy);
    let a = sys_a.build_kb(&texts);
    let sys_b = system(&world, Variant::Joint, SolverKind::Greedy);
    let b = sys_b.build_kb(&texts);
    assert_eq!(a.kb.n_facts(), b.kb.n_facts());
    assert_eq!(a.records.len(), b.records.len());
}
