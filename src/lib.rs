//! Root suite crate.
